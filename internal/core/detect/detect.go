// Package detect implements the paper's heuristic MEV detectors (§3.1):
//
//   - sandwich detection following Torres et al.: two attacker swaps
//     bracketing a victim swap in the same block, on the same pool, with
//     near-identical bought and sold amounts;
//   - arbitrage detection following Qin et al.: a single transaction whose
//     swap events form a closed loop across exchanges;
//   - liquidation detection from LiquidationCall / LiquidateBorrow events;
//   - flash-loan detection following Wang et al. from FlashLoan events.
//
// Detectors consume only blocks, receipts and event logs — the archive-
// node view. They never see simulator ground truth; tests score them
// against it.
package detect

import (
	"mevscope/internal/chain"
	"mevscope/internal/events"
	"mevscope/internal/obs"
	"mevscope/internal/parallel"
	"mevscope/internal/types"
)

// txSwaps extracts the decoded Swap events of one transaction.
func txSwaps(rcpt *types.Receipt) []events.Swap {
	var out []events.Swap
	for _, l := range rcpt.Logs {
		if s, ok := events.DecodeSwap(l); ok {
			out = append(out, s)
		}
	}
	return out
}

// txFlashLoans extracts the decoded FlashLoan events of one transaction.
func txFlashLoans(rcpt *types.Receipt) []events.FlashLoan {
	var out []events.FlashLoan
	for _, l := range rcpt.Logs {
		if f, ok := events.DecodeFlashLoan(l); ok {
			out = append(out, f)
		}
	}
	return out
}

// Sandwich is one detected sandwich attack (Definition 1).
type Sandwich struct {
	Block uint64
	Month types.Month

	Attacker types.Address
	Victim   types.Address
	Pool     types.Address
	// Token is the sandwiched asset (bought in the front, sold in the back).
	Token types.Address

	FrontTx  types.Hash
	VictimTx types.Hash
	BackTx   types.Hash

	FrontIndex, VictimIndex, BackIndex int

	// FrontIn is WETH spent in the frontrun; BackOut is WETH recovered in
	// the backrun. Gain = BackOut - FrontIn (before fees and tips).
	FrontIn types.Amount
	BackOut types.Amount

	// GasPriceOrdered records whether the Torres et al. gas-price
	// condition (front gas price > victim gas price) held — true for
	// classic PGA sandwiches, typically false for bundle sandwiches.
	GasPriceOrdered bool
}

// Gain is the attacker's gross WETH delta.
func (s *Sandwich) Gain() types.Amount { return s.BackOut - s.FrontIn }

// sandwichCandidate is a single-swap transaction eligible for matching.
type sandwichCandidate struct {
	txIdx int
	tx    *types.Transaction
	swap  events.Swap
}

// AmountTolerance is the relative tolerance (in basis points) between the
// attacker's bought and sold amounts.
const AmountTolerance = 100 // 1 %

// SandwichesInBlock runs the sandwich heuristics over one block. weth
// anchors the "buy then sell" direction, as in the paper's detectors
// which track ether in/out of the attacker.
func SandwichesInBlock(b *types.Block, weth types.Address) []Sandwich {
	// Collect single-swap transactions (multi-hop swaps are arbitrage
	// shaped and excluded from the sandwich heuristic).
	var buys, sells []sandwichCandidate
	for i, rcpt := range b.Receipts {
		if rcpt.Status != types.StatusSuccess {
			continue
		}
		swaps := txSwaps(rcpt)
		if len(swaps) != 1 {
			continue
		}
		c := sandwichCandidate{txIdx: i, tx: b.Txs[i], swap: swaps[0]}
		if swaps[0].TokenIn == weth {
			buys = append(buys, c)
		} else if swaps[0].TokenOut == weth {
			sells = append(sells, c)
		}
	}
	var out []Sandwich
	used := map[int]bool{}
	for _, back := range sells {
		if used[back.txIdx] {
			continue
		}
		// Find the matching front: same sender, same pool, earlier in the
		// block, bought ≈ what the back sells.
		for _, front := range buys {
			if used[front.txIdx] || front.txIdx >= back.txIdx {
				continue
			}
			if front.tx.From != back.tx.From || front.swap.Pool != back.swap.Pool {
				continue
			}
			diff := (front.swap.AmountOut - back.swap.AmountIn).Abs()
			if front.swap.AmountOut == 0 || diff.MulDiv(10_000, front.swap.AmountOut) > AmountTolerance {
				continue
			}
			// Find a victim strictly between them: different sender, same
			// pool, same direction as the front.
			for _, vic := range buys {
				if vic.txIdx <= front.txIdx || vic.txIdx >= back.txIdx {
					continue
				}
				if vic.tx.From == front.tx.From || vic.swap.Pool != front.swap.Pool {
					continue
				}
				base := b.Header.BaseFee
				out = append(out, Sandwich{
					Block:    b.Header.Number,
					Month:    types.MonthOf(b.Header.Time),
					Attacker: front.tx.From,
					Victim:   vic.tx.From,
					Pool:     front.swap.Pool,
					Token:    front.swap.TokenOut,
					FrontTx:  front.tx.Hash(), VictimTx: vic.tx.Hash(), BackTx: back.tx.Hash(),
					FrontIndex: front.txIdx, VictimIndex: vic.txIdx, BackIndex: back.txIdx,
					FrontIn: front.swap.AmountIn, BackOut: back.swap.AmountOut,
					GasPriceOrdered: front.tx.EffectiveGasPrice(base) > vic.tx.EffectiveGasPrice(base),
				})
				used[front.txIdx], used[back.txIdx] = true, true
				break
			}
			if used[back.txIdx] {
				break
			}
		}
	}
	return out
}

// Arbitrage is one detected closed-loop arbitrage (Definition 2 family).
type Arbitrage struct {
	Block uint64
	Month types.Month

	Extractor types.Address
	Tx        types.Hash
	TxIndex   int

	// Token is the loop's start/end asset; Hops the number of swaps.
	Token types.Address
	Hops  int
	// Pools traversed, in order.
	Pools []types.Address

	AmountIn  types.Amount
	AmountOut types.Amount

	// FlashLoan marks arbitrages funded by a flash loan; FlashFee is the
	// fee visible in the FlashLoan event.
	FlashLoan bool
	FlashFee  types.Amount
}

// Gain is the gross profit in the loop asset.
func (a *Arbitrage) Gain() types.Amount { return a.AmountOut - a.AmountIn }

// ArbitragesInBlock runs the Qin et al. heuristics over one block: a
// transaction with more than one swap event whose hops chain into a closed
// loop.
func ArbitragesInBlock(b *types.Block) []Arbitrage {
	var out []Arbitrage
	for i, rcpt := range b.Receipts {
		if rcpt.Status != types.StatusSuccess {
			continue
		}
		swaps := txSwaps(rcpt)
		if len(swaps) < 2 {
			continue
		}
		// Hops must chain: out token of hop k is in token of hop k+1.
		chained := true
		for k := 1; k < len(swaps); k++ {
			if swaps[k].TokenIn != swaps[k-1].TokenOut {
				chained = false
				break
			}
		}
		if !chained {
			continue
		}
		// Closed loop: ends where it starts.
		if swaps[len(swaps)-1].TokenOut != swaps[0].TokenIn {
			continue
		}
		arb := Arbitrage{
			Block:     b.Header.Number,
			Month:     types.MonthOf(b.Header.Time),
			Extractor: b.Txs[i].From,
			Tx:        b.Txs[i].Hash(),
			TxIndex:   i,
			Token:     swaps[0].TokenIn,
			Hops:      len(swaps),
			AmountIn:  swaps[0].AmountIn,
			AmountOut: swaps[len(swaps)-1].AmountOut,
		}
		for _, sw := range swaps {
			arb.Pools = append(arb.Pools, sw.Pool)
		}
		if fls := txFlashLoans(rcpt); len(fls) > 0 {
			arb.FlashLoan = true
			arb.FlashFee = fls[0].Fee
		}
		out = append(out, arb)
	}
	return out
}

// Liquidation is one detected lending-pool liquidation (§3.1.3).
type Liquidation struct {
	Block uint64
	Month types.Month

	Liquidator types.Address
	Borrower   types.Address
	Protocol   types.Address
	Tx         types.Hash
	TxIndex    int

	DebtToken       types.Address
	CollateralToken types.Address
	DebtRepaid      types.Amount
	CollateralOut   types.Amount
	Compound        bool

	FlashLoan bool
	FlashFee  types.Amount
}

// LiquidationsInBlock extracts liquidation events from one block.
func LiquidationsInBlock(b *types.Block) []Liquidation {
	var out []Liquidation
	for i, rcpt := range b.Receipts {
		if rcpt.Status != types.StatusSuccess {
			continue
		}
		var liqs []Liquidation
		for _, l := range rcpt.Logs {
			ev, ok := events.DecodeLiquidation(l)
			if !ok {
				continue
			}
			liqs = append(liqs, Liquidation{
				Block:      b.Header.Number,
				Month:      types.MonthOf(b.Header.Time),
				Liquidator: ev.Liquidator,
				Borrower:   ev.Borrower,
				Protocol:   ev.Protocol,
				Tx:         b.Txs[i].Hash(),
				TxIndex:    i,
				DebtToken:  ev.DebtToken, CollateralToken: ev.CollateralToken,
				DebtRepaid: ev.DebtRepaid, CollateralOut: ev.CollateralOut,
				Compound: ev.Compound,
			})
		}
		if len(liqs) > 0 {
			if fls := txFlashLoans(rcpt); len(fls) > 0 {
				for k := range liqs {
					liqs[k].FlashLoan = true
					liqs[k].FlashFee = fls[0].Fee
				}
			}
			out = append(out, liqs...)
		}
	}
	return out
}

// Result is the full detector sweep over a block range.
type Result struct {
	Sandwiches   []Sandwich
	Arbitrages   []Arbitrage
	Liquidations []Liquidation
	// FlashLoanTxs is every transaction that emitted a FlashLoan event,
	// whether or not an MEV detector matched it.
	FlashLoanTxs map[types.Hash]bool
}

// scanBlock runs every detector over one block, appending into res.
func scanBlock(res *Result, b *types.Block, weth types.Address) {
	res.Sandwiches = append(res.Sandwiches, SandwichesInBlock(b, weth)...)
	res.Arbitrages = append(res.Arbitrages, ArbitragesInBlock(b)...)
	res.Liquidations = append(res.Liquidations, LiquidationsInBlock(b)...)
	for i, rcpt := range b.Receipts {
		if rcpt.Status != types.StatusSuccess {
			continue
		}
		if len(txFlashLoans(rcpt)) > 0 {
			res.FlashLoanTxs[b.Txs[i].Hash()] = true
		}
	}
}

// merge appends other's findings onto res, preserving block order when
// partial results are merged in ascending chunk order.
func (res *Result) merge(other *Result) {
	res.Sandwiches = append(res.Sandwiches, other.Sandwiches...)
	res.Arbitrages = append(res.Arbitrages, other.Arbitrages...)
	res.Liquidations = append(res.Liquidations, other.Liquidations...)
	for h := range other.FlashLoanTxs {
		res.FlashLoanTxs[h] = true
	}
}

// Scanner is the incremental detector front-end: it consumes blocks one
// at a time in ascending order and accumulates the same Result a batch
// sweep over the fed range produces. Both the streaming block-follower
// (internal/stream) and the batch Scan/ScanParallel paths are built on
// it, so there is exactly one detector seam.
type Scanner struct {
	weth types.Address
	res  *Result
}

// NewScanner creates a Scanner anchored on the WETH address.
func NewScanner(weth types.Address) *Scanner {
	return &Scanner{weth: weth, res: &Result{FlashLoanTxs: make(map[types.Hash]bool)}}
}

// Feed runs every detector over one block, appending the findings. Blocks
// must be fed in ascending height order for the Result to match a batch
// sweep byte for byte.
func (s *Scanner) Feed(b *types.Block) {
	scanBlock(s.res, b, s.weth)
}

// Result returns the live accumulated sweep. The pointer stays valid (and
// keeps growing) across subsequent Feed calls.
func (s *Scanner) Result() *Result { return s.res }

// Counts returns the current number of detections per kind — the cursor
// incremental consumers (profit.Tracker, privinfer.Inferrer.Feed) use to
// pick up where they left off.
func (s *Scanner) Counts() (sandwiches, arbitrages, liquidations int) {
	return len(s.res.Sandwiches), len(s.res.Arbitrages), len(s.res.Liquidations)
}

// Scan runs every detector over chain blocks in [from, to] sequentially.
func Scan(c *chain.Chain, weth types.Address, from, to uint64) *Result {
	return ScanParallel(c, weth, from, to, 1)
}

// ScanParallel fans blocks in [from, to] across a worker pool. Each worker
// feeds a contiguous block range through its own Scanner; partial results
// are merged in ascending block order, so the output is identical to the
// sequential Scan — and to a single Scanner fed every block — for any
// worker count. workers < 1 selects runtime.NumCPU().
func ScanParallel(c *chain.Chain, weth types.Address, from, to uint64, workers int) *Result {
	return ScanParallelSpan(c, weth, from, to, workers, nil)
}

// ScanParallelSpan is ScanParallel recorded as a "detect" stage under
// the given parent span: block count, detection count, pool size and
// per-worker busy time land on the trace. A nil parent disables
// recording at zero cost; the result is identical either way.
func ScanParallelSpan(c *chain.Chain, weth types.Address, from, to uint64, workers int, parent *obs.Span) *Result {
	sp := parent.Child(obs.StageDetect)
	defer sp.End()
	var blocks []*types.Block
	c.Range(from, to, func(b *types.Block) bool {
		blocks = append(blocks, b)
		return true
	})
	sp.SetBlocks(len(blocks))
	parts := parallel.MapChunksSpan(sp, len(blocks), workers, func(lo, hi int) *Result {
		sc := NewScanner(weth)
		for _, b := range blocks[lo:hi] {
			sc.Feed(b)
		}
		return sc.Result()
	})
	res := &Result{FlashLoanTxs: make(map[types.Hash]bool)}
	for _, part := range parts {
		res.merge(part)
	}
	sp.SetTxs(len(res.Sandwiches) + len(res.Arbitrages) + len(res.Liquidations))
	return res
}

// ScanAll sweeps the whole chain.
func ScanAll(c *chain.Chain, weth types.Address) *Result {
	return Scan(c, weth, c.Timeline.StartBlock, c.Timeline.EndBlock())
}

// ScanAllParallel sweeps the whole chain across a worker pool.
func ScanAllParallel(c *chain.Chain, weth types.Address, workers int) *Result {
	return ScanParallel(c, weth, c.Timeline.StartBlock, c.Timeline.EndBlock(), workers)
}
