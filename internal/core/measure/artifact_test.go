package measure

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestArtifactsOrderAndNames: the model exposes every table and figure,
// in paper order, under stable names.
func TestArtifactsOrderAndNames(t *testing.T) {
	r := sampleReport()
	arts := r.Artifacts()
	want := ArtifactNames()
	if len(arts) != len(want) {
		t.Fatalf("artifacts = %d, want %d", len(arts), len(want))
	}
	for i, a := range arts {
		if a.Name != want[i] {
			t.Errorf("artifact %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Title == "" {
			t.Errorf("artifact %q has no title", a.Name)
		}
		for _, row := range a.Rows {
			if len(row) != len(a.Columns) {
				t.Errorf("artifact %q row width %d, schema %d", a.Name, len(row), len(a.Columns))
			}
		}
	}
	if _, ok := r.Artifact("fig3"); !ok {
		t.Error("lookup by name failed")
	}
	if _, ok := r.Artifact("nope"); ok {
		t.Error("unknown name resolved")
	}
}

// TestWindowArtifactsEmptyWithoutObserver: fig9/mevsplit/private_links
// stay in the listing with zero rows when the run had no observation
// window, so the artifact set — and the CSV file set — is stable.
func TestWindowArtifactsEmptyWithoutObserver(t *testing.T) {
	r := sampleReport()
	r.Fig9 = nil
	for _, name := range []string{"fig9", "mevsplit", "private_links", "vantage_sensitivity"} {
		a, ok := r.Artifact(name)
		if !ok {
			t.Fatalf("artifact %q missing without observer", name)
		}
		if len(a.Rows) != 0 {
			t.Errorf("artifact %q has %d rows without observer", name, len(a.Rows))
		}
	}
	if got := r.Artifacts(); len(got) != len(ArtifactNames()) {
		t.Errorf("artifact count changed without observer: %d", len(got))
	}
}

// TestArtifactJSONEncoding: schema kinds encode by name, cells as native
// JSON types, months as axis labels, scalars as an object.
func TestArtifactJSONEncoding(t *testing.T) {
	r := sampleReport()
	a, _ := r.Artifact("fig6")
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Name    string `json:"name"`
		Columns []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"columns"`
		Rows    [][]any        `json:"rows"`
		Scalars map[string]any `json:"scalars"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "fig6" {
		t.Errorf("name = %q", out.Name)
	}
	if out.Columns[0].Kind != "month" || out.Columns[1].Kind != "int" || out.Columns[3].Kind != "float" {
		t.Errorf("column kinds = %+v", out.Columns)
	}
	if got := out.Rows[0][0]; got != "2/2021" {
		t.Errorf("month cell = %v", got)
	}
	if got := out.Rows[0][1]; got != float64(1) {
		t.Errorf("int cell = %v", got)
	}
	if _, ok := out.Scalars["corr_non_fb"]; !ok {
		t.Errorf("scalars = %v", out.Scalars)
	}
}

// TestAnnotatedValueJSON: ensemble-annotated cells encode as mean/std
// objects.
func TestAnnotatedValueJSON(t *testing.T) {
	raw, err := json.Marshal(MeanStd(1.5, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(raw); got != `{"mean":1.5,"std":0.25}` {
		t.Errorf("annotated cell = %s", got)
	}
}

// TestScalarOnlyCSV: artifacts without a row schema encode their scalars
// as metric,value pairs.
func TestScalarOnlyCSV(t *testing.T) {
	r := sampleReport()
	a, _ := r.Artifact("concentration")
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "metric,value\n") || !strings.Contains(out, "miners,") {
		t.Errorf("scalar CSV = %q", out)
	}
}

// TestWriteTextSingleArtifact: every artifact renders standalone, with
// its section heading.
func TestWriteTextSingleArtifact(t *testing.T) {
	r := sampleReport()
	for _, a := range r.Artifacts() {
		var buf bytes.Buffer
		WriteText(&buf, a)
		if !strings.HasPrefix(buf.String(), "=== ") {
			t.Errorf("artifact %q text has no heading: %q", a.Name, buf.String())
		}
	}
}

// TestColumnAndScalarLookup: the accessors resolve by name.
func TestColumnAndScalarLookup(t *testing.T) {
	r := sampleReport()
	a, _ := r.Artifact("fig3")
	if i := a.Column("total_blocks"); i != 2 {
		t.Errorf("Column(total_blocks) = %d", i)
	}
	if i := a.Column("nope"); i != -1 {
		t.Errorf("Column(nope) = %d", i)
	}
	b, _ := r.Artifact("bundles")
	if got := b.Scalar("flashbots_blocks"); got.Kind != KindInt {
		t.Errorf("Scalar(flashbots_blocks) = %+v", got)
	}
	if got := b.Scalar("nope"); got != (Value{}) {
		t.Errorf("Scalar(nope) = %+v", got)
	}
}
