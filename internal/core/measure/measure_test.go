package measure

import (
	"strings"
	"testing"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
	"mevscope/internal/flashbots"
	"mevscope/internal/types"
)

var (
	minerA = types.DeriveAddress("miner", 1)
	minerB = types.DeriveAddress("miner", 2)
	weth   = types.DeriveAddress("tok", 0)
)

// buildChain creates n blocks alternating between two miners with a few
// transactions carrying given gas prices.
func buildChain(t *testing.T, blocksPerMonth uint64, n int) *chain.Chain {
	t.Helper()
	c := chain.New(types.DefaultTimeline(blocksPerMonth))
	for i := 0; i < n; i++ {
		m := minerA
		if i%3 == 2 {
			m = minerB
		}
		num := c.NextNumber()
		tx := &types.Transaction{Nonce: uint64(i), From: types.DeriveAddress("u", uint64(i)), GasPrice: 50 * types.Gwei}
		b := &types.Block{
			Header:   types.Header{Number: num, Time: c.Timeline.TimeOfBlock(num), Miner: m},
			Txs:      []*types.Transaction{tx},
			Receipts: []*types.Receipt{{TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 21_000, EffectiveGasPrice: 50 * types.Gwei}},
		}
		b.Seal()
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func fbRecord(c *chain.Chain, block uint64, miner types.Address, bundles ...[]types.Hash) flashbots.BlockRecord {
	rec := flashbots.BlockRecord{BlockNumber: block, Miner: miner}
	for bi, txs := range bundles {
		for _, h := range txs {
			rec.Txs = append(rec.Txs, flashbots.TxRecord{
				Hash: h, EOA: types.DeriveAddress("eoa", uint64(bi)),
				BundleID: uint64(bi + 1), BundleIndex: bi, BundleType: flashbots.TypeFlashbots,
			})
		}
	}
	return rec
}

func TestMinerSetOnChain(t *testing.T) {
	c := buildChain(t, 10, 30)
	set := MinerSetOnChain(c)
	if !set[minerA] || !set[minerB] || len(set) != 2 {
		t.Errorf("set = %v", set)
	}
}

func TestBuildTable1(t *testing.T) {
	in := Inputs{Profits: []profit.Record{
		{Kind: profit.KindSandwich, ViaFlashbots: true},
		{Kind: profit.KindSandwich},
		{Kind: profit.KindArbitrage, ViaFlashbots: true, ViaFlashLoan: true},
		{Kind: profit.KindArbitrage, ViaFlashLoan: true},
		{Kind: profit.KindLiquidation},
	}}
	tbl := BuildTable1(in)
	if tbl.Rows[0].Extractions != 2 || tbl.Rows[0].ViaFlashbots != 1 {
		t.Errorf("sandwich row = %+v", tbl.Rows[0])
	}
	if tbl.Rows[1].ViaFlashLoans != 2 || tbl.Rows[1].ViaBoth != 1 {
		t.Errorf("arb row = %+v", tbl.Rows[1])
	}
	if tbl.Total.Extractions != 5 {
		t.Errorf("total = %+v", tbl.Total)
	}
	if tbl.Rows[0].Pct(1) != 50 {
		t.Error("pct")
	}
	var zero Table1Row
	if zero.Pct(1) != 0 {
		t.Error("pct of empty row")
	}
	out := tbl.Format()
	if !strings.Contains(out, "Sandwiching") || !strings.Contains(out, "Total") {
		t.Error("format")
	}
}

func TestBuildFigure3And4(t *testing.T) {
	c := buildChain(t, 10, 30) // 3 months
	// Month 1: every minerA block is a Flashbots block.
	var fbs []flashbots.BlockRecord
	c.Range(c.Timeline.FirstBlockOfMonth(1), c.Timeline.FirstBlockOfMonth(2)-1, func(b *types.Block) bool {
		if b.Header.Miner == minerA {
			fbs = append(fbs, fbRecord(c, b.Header.Number, minerA, []types.Hash{b.Txs[0].Hash()}))
		}
		return true
	})
	in := Inputs{Chain: c, FBBlocks: fbs}
	f3 := BuildFigure3(in)
	if len(f3) != 3 {
		t.Fatalf("months = %d", len(f3))
	}
	if f3[0].FlashbotsBlocks != 0 || f3[0].Ratio() != 0 {
		t.Error("month 0 should be empty")
	}
	if f3[1].FlashbotsBlocks != len(fbs) {
		t.Errorf("month 1 fb = %d want %d", f3[1].FlashbotsBlocks, len(fbs))
	}

	f4 := BuildFigure4(in)
	// minerA mines 2/3 of blocks; in month 1 it is a Flashbots miner.
	if f4[1].Value < 0.5 || f4[1].Value > 0.8 {
		t.Errorf("month-1 hashrate estimate = %f", f4[1].Value)
	}
	if f4[0].Value != 0 {
		t.Error("month-0 estimate should be 0")
	}
}

func TestBuildFigure5(t *testing.T) {
	c := buildChain(t, 10, 30)
	fbs := []flashbots.BlockRecord{
		fbRecord(c, c.Timeline.StartBlock+1, minerA, []types.Hash{{1}}),
		fbRecord(c, c.Timeline.StartBlock+2, minerA, []types.Hash{{2}}),
		fbRecord(c, c.Timeline.StartBlock+3, minerB, []types.Hash{{3}}),
	}
	f5 := BuildFigure5(Inputs{Chain: c, FBBlocks: fbs})
	if len(f5.Thresholds) != 5 {
		t.Fatal("thresholds")
	}
	// Thresholds must be strictly increasing.
	for i := 1; i < len(f5.Thresholds); i++ {
		if f5.Thresholds[i] <= f5.Thresholds[i-1] {
			t.Fatal("thresholds not increasing")
		}
	}
	// Month 0: two miners ≥1 block, one miner ≥2 blocks.
	if f5.Counts[0][0] != 2 || f5.Counts[0][1] != 1 {
		t.Errorf("counts = %v", f5.Counts[0])
	}
	if f5.MaxMinersInAnyMonth() != 2 {
		t.Error("peak miners")
	}
}

func TestBuildFigure6(t *testing.T) {
	c := buildChain(t, 10, 30)
	profits := []profit.Record{
		{Kind: profit.KindSandwich, Month: 0, ViaFlashbots: false},
		{Kind: profit.KindSandwich, Month: 1, ViaFlashbots: true},
		{Kind: profit.KindSandwich, Month: 1, ViaFlashbots: false},
		{Kind: profit.KindArbitrage, Month: 1, ViaFlashbots: true}, // not counted
	}
	f6 := BuildFigure6(Inputs{Chain: c, Profits: profits})
	if len(f6.Rows) != 3 {
		t.Fatal("rows")
	}
	if f6.Rows[0].NonFlashbotsSand != 1 || f6.Rows[1].FlashbotsSand != 1 || f6.Rows[1].NonFlashbotsSand != 1 {
		t.Errorf("rows = %+v", f6.Rows)
	}
	if f6.Rows[0].AvgGasPriceGwei != 50 {
		t.Errorf("gas = %f", f6.Rows[0].AvgGasPriceGwei)
	}
	if f6.Rows[0].MedianGasPriceGwei != 50 {
		t.Error("median gas")
	}
}

func TestBuildFigure7(t *testing.T) {
	c := buildChain(t, 10, 30)
	sandTx := types.Hash{9}
	fbs := []flashbots.BlockRecord{
		fbRecord(c, c.Timeline.StartBlock+1, minerA, []types.Hash{sandTx}, []types.Hash{{7}}),
	}
	profits := []profit.Record{
		{Kind: profit.KindSandwich, ViaFlashbots: true, Txs: []types.Hash{sandTx}},
	}
	f7 := BuildFigure7(Inputs{Chain: c, FBBlocks: fbs, Profits: profits})
	if len(f7.Rows) != 1 {
		t.Fatal("rows")
	}
	row := f7.Rows[0]
	if row.Txs["sandwiches"] != 1 || row.Txs["other"] != 1 {
		t.Errorf("txs = %v", row.Txs)
	}
	if row.Searchers["sandwiches"] != 1 || row.Searchers["other"] != 1 {
		t.Errorf("searchers = %v", row.Searchers)
	}
}

func TestBuildFigure8(t *testing.T) {
	c := buildChain(t, 10, 30)
	profits := []profit.Record{
		{Kind: profit.KindSandwich, Extractor: minerA, ViaFlashbots: true, NetETH: types.Ether},
		{Kind: profit.KindSandwich, Extractor: minerA, NetETH: types.Ether / 2},
		{Kind: profit.KindSandwich, Extractor: types.DeriveAddress("s", 1), ViaFlashbots: true, NetETH: types.Ether / 10},
		{Kind: profit.KindSandwich, Extractor: types.DeriveAddress("s", 1), NetETH: types.Ether / 4},
	}
	f8 := BuildFigure8(Inputs{Chain: c, Profits: profits})
	if f8.MinerFB.N != 1 || f8.MinerNonFB.N != 1 || f8.SearcherFB.N != 1 || f8.SearcherNonFB.N != 1 {
		t.Errorf("quadrants = %+v", f8)
	}
	if f8.MinerFB.Mean != 1.0 {
		t.Error("miner FB mean")
	}
}

func TestBuildBundleStats(t *testing.T) {
	c := buildChain(t, 10, 30)
	fbs := []flashbots.BlockRecord{
		fbRecord(c, c.Timeline.StartBlock+1, minerA, []types.Hash{{1}}, []types.Hash{{2}, {3}}),
		fbRecord(c, c.Timeline.StartBlock+2, minerA, []types.Hash{{4}}),
	}
	bs := BuildBundleStats(Inputs{Chain: c, FBBlocks: fbs})
	if bs.Bundles != 3 || bs.FlashbotsBlocks != 2 {
		t.Errorf("stats = %+v", bs)
	}
	if bs.SingleTxBundles != 2 || bs.MaxBundleTxs != 2 {
		t.Error("sizes")
	}
	if bs.SingleTxShare() < 0.66 || bs.SingleTxShare() > 0.67 {
		t.Error("single share")
	}
	if bs.ByType["flashbots"] != 3 {
		t.Error("type counts")
	}
	var zero BundleStats
	if zero.SingleTxShare() != 0 {
		t.Error("empty share")
	}
}

func TestBuildNegativeProfits(t *testing.T) {
	in := Inputs{Profits: []profit.Record{
		{Kind: profit.KindSandwich, ViaFlashbots: true, NetETH: types.Ether},
		{Kind: profit.KindSandwich, ViaFlashbots: true, NetETH: -types.Ether / 2},
		{Kind: profit.KindSandwich, NetETH: -types.Ether}, // non-FB: excluded
	}}
	np := BuildNegativeProfits(in)
	if np.FlashbotsSandwiches != 2 || np.Unprofitable != 1 {
		t.Errorf("np = %+v", np)
	}
	if np.Share() != 0.5 || np.TotalLossETH != 0.5 {
		t.Errorf("share/loss = %f %f", np.Share(), np.TotalLossETH)
	}
	var zero NegativeProfits
	if zero.Share() != 0 {
		t.Error("empty share")
	}
}

func TestBuildFullReportWithoutObserver(t *testing.T) {
	c := buildChain(t, 10, 30)
	in := Inputs{Chain: c, Detect: &detect.Result{}, WETH: weth}
	rep := Build(in, nil)
	if rep.Fig9 != nil {
		t.Error("Fig9 should be nil without inferrer")
	}
	if len(rep.Fig3) == 0 || len(rep.Fig4) == 0 {
		t.Error("monthly series missing")
	}
}

func TestBuildVictimDamage(t *testing.T) {
	in := Inputs{Profits: []profit.Record{
		{Kind: profit.KindSandwich, Month: 9, GainETH: types.Ether},
		{Kind: profit.KindSandwich, Month: 9, GainETH: types.Ether / 2},
		{Kind: profit.KindSandwich, Month: 10, GainETH: -types.Ether}, // failed: no damage
		{Kind: profit.KindArbitrage, Month: 9, GainETH: types.Ether},  // not a sandwich
	}}
	vd := BuildVictimDamage(in)
	if vd.Victims != 2 {
		t.Errorf("victims = %d", vd.Victims)
	}
	if vd.TotalETH != 1.5 {
		t.Errorf("total = %f", vd.TotalETH)
	}
	if vd.PerMonth[9] != 1.5 || vd.PerMonth[10] != 0 {
		t.Errorf("per month = %v", vd.PerMonth)
	}
	if vd.Summary.N != 2 {
		t.Error("summary")
	}
}

func TestBuildConcentration(t *testing.T) {
	c := buildChain(t, 10, 30)
	fbs := []flashbots.BlockRecord{
		fbRecord(c, c.Timeline.StartBlock+1, minerA, []types.Hash{{1}}),
		fbRecord(c, c.Timeline.StartBlock+2, minerA, []types.Hash{{2}}),
		fbRecord(c, c.Timeline.StartBlock+3, minerA, []types.Hash{{3}}),
		fbRecord(c, c.Timeline.StartBlock+4, minerB, []types.Hash{{4}}),
	}
	conc := BuildConcentration(Inputs{Chain: c, FBBlocks: fbs})
	if conc.Miners != 2 {
		t.Errorf("miners = %d", conc.Miners)
	}
	if conc.Top2Share != 1.0 {
		t.Errorf("top2 = %f", conc.Top2Share)
	}
	if g := conc.GiniPerMonth[0]; g <= 0 {
		t.Errorf("gini = %f (3-vs-1 split should be unequal)", g)
	}
	empty := BuildConcentration(Inputs{Chain: c})
	if empty.Top2Share != 0 || empty.Miners != 0 {
		t.Error("empty dataset")
	}
}
