package measure

import (
	"reflect"
	"testing"

	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
	"mevscope/internal/flashbots"
	"mevscope/internal/types"
)

// TestAccumulatorMatchesBatchAggregates: feeding blocks one at a time
// must produce the same report as the batch aggregate pass over the
// finished chain — the streaming/batch seam contract at the measure
// layer.
func TestAccumulatorMatchesBatchAggregates(t *testing.T) {
	c := buildChain(t, 10, 35) // 3.5 months on two miners
	var fbs []flashbots.BlockRecord
	for _, b := range c.Blocks() {
		// Every 4th block is a Flashbots block carrying its first tx.
		if b.Header.Number%4 == 0 && len(b.Txs) > 0 {
			fbs = append(fbs, fbRecord(c, b.Header.Number, b.Header.Miner, []types.Hash{b.Txs[0].Hash()}))
		}
	}
	in := Inputs{
		Chain:    c,
		FBBlocks: fbs,
		FBSet:    map[types.Hash]flashbots.BundleType{},
		Detect:   &detect.Result{FlashLoanTxs: map[types.Hash]bool{}},
		Profits: []profit.Record{
			{Kind: profit.KindSandwich, Month: 0, ViaFlashbots: true, GainETH: types.Ether, NetETH: types.Milliether},
			{Kind: profit.KindSandwich, Month: 1, GainETH: types.Ether, NetETH: -types.Milliether},
		},
		WETH:    weth,
		Workers: 2,
	}

	// Streaming: one FeedBlock per block, in height order.
	acc := NewAccumulator(c.Timeline, weth)
	fi := 0
	for _, b := range c.Blocks() {
		var rec *flashbots.BlockRecord
		if fi < len(fbs) && fbs[fi].BlockNumber == b.Header.Number {
			rec = &fbs[fi]
			fi++
		}
		acc.FeedBlock(b, rec)
	}
	if got := len(acc.FBBlocks()); got != len(fbs) {
		t.Fatalf("accumulator holds %d FB records, want %d", got, len(fbs))
	}

	streamed := acc.Report(in, nil)
	batch := Build(in, nil)
	if !reflect.DeepEqual(streamed.Fig3, batch.Fig3) {
		t.Errorf("Fig3 differs:\n stream %+v\n batch  %+v", streamed.Fig3, batch.Fig3)
	}
	if !reflect.DeepEqual(streamed.Fig4, batch.Fig4) {
		t.Errorf("Fig4 differs:\n stream %+v\n batch  %+v", streamed.Fig4, batch.Fig4)
	}
	if !reflect.DeepEqual(streamed.Fig6, batch.Fig6) {
		t.Errorf("Fig6 differs:\n stream %+v\n batch  %+v", streamed.Fig6, batch.Fig6)
	}
	if !reflect.DeepEqual(streamed.Fig8, batch.Fig8) {
		t.Errorf("Fig8 differs:\n stream %+v\n batch  %+v", streamed.Fig8, batch.Fig8)
	}
	if !reflect.DeepEqual(streamed.Table1, batch.Table1) {
		t.Errorf("Table1 differs")
	}
	if !reflect.DeepEqual(streamed.Concentration, batch.Concentration) {
		t.Errorf("Concentration differs")
	}
}
