// Package measure aggregates detector output, the Flashbots public API
// dataset and the private-transaction inference into the paper's tables
// and figures: Table 1 (MEV dataset overview), Figures 3-9 and the §4.1,
// §5.2, §6.2 and §6.3 statistics.
package measure

import (
	"fmt"
	"sort"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/flashbots"
	"mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/parallel"
	"mevscope/internal/stats"
	"mevscope/internal/types"
)

// Inputs carries everything the aggregations read. Observer may be nil
// when no pending-transaction capture exists (Figure 9 and §6 are then
// skipped).
type Inputs struct {
	Chain    *chain.Chain
	FBBlocks []flashbots.BlockRecord
	FBSet    map[types.Hash]flashbots.BundleType
	Detect   *detect.Result
	Profits  []profit.Record
	Observer privinfer.Observer
	// Vantages are the per-vantage observation logs of the whole
	// observation network (Vantages[0] is the primary); empty when the
	// run has no capture. The vantage-sensitivity artifact reads them.
	Vantages []*p2p.Observer
	// View names the observation view Observer was resolved from, for
	// artifact labelling.
	View string
	WETH types.Address

	// Workers sizes the aggregation worker pool (0 or 1 = sequential,
	// <0 = runtime.NumCPU()). Every builder reads the inputs immutably and
	// merges per-month partials in month order, so the report is identical
	// for any worker count.
	Workers int

	// Span, when non-nil, is the parent the aggregate and build stages
	// record themselves under (internal/obs). Tracing never perturbs the
	// report; nil disables it at zero cost.
	Span *obs.Span
}

// workers resolves the pool size: the zero value stays sequential.
func (in Inputs) workers() int {
	if in.Workers == 0 {
		return 1
	}
	return in.Workers
}

// MinerSetOnChain derives the set of coinbase addresses that ever produced
// a block — the public information the profit-split analysis uses to tell
// miner extractors from searchers.
func MinerSetOnChain(c *chain.Chain) map[types.Address]bool {
	out := map[types.Address]bool{}
	for _, b := range c.Blocks() {
		out[b.Header.Miner] = true
	}
	return out
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Row is one strategy row of the MEV dataset overview.
type Table1Row struct {
	Strategy      string
	Extractions   int
	ViaFlashbots  int
	ViaFlashLoans int
	ViaBoth       int
}

// Pct formats n as a percentage of the row total.
func (r Table1Row) Pct(n int) float64 {
	if r.Extractions == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Extractions)
}

// Table1 is the paper's Table 1.
type Table1 struct {
	Rows  []Table1Row // sandwiching, arbitrage, liquidation
	Total Table1Row
}

// BuildTable1 aggregates profit records into Table 1.
func BuildTable1(in Inputs) Table1 {
	rows := map[profit.Kind]*Table1Row{
		profit.KindSandwich:    {Strategy: "Sandwiching"},
		profit.KindArbitrage:   {Strategy: "Arbitrage"},
		profit.KindLiquidation: {Strategy: "Liquidation"},
	}
	for _, r := range in.Profits {
		row := rows[r.Kind]
		row.Extractions++
		if r.ViaFlashbots {
			row.ViaFlashbots++
		}
		if r.ViaFlashLoan {
			row.ViaFlashLoans++
		}
		if r.ViaFlashbots && r.ViaFlashLoan {
			row.ViaBoth++
		}
	}
	t := Table1{Rows: []Table1Row{
		*rows[profit.KindSandwich], *rows[profit.KindArbitrage], *rows[profit.KindLiquidation],
	}}
	t.Total.Strategy = "Total"
	for _, r := range t.Rows {
		t.Total.Extractions += r.Extractions
		t.Total.ViaFlashbots += r.ViaFlashbots
		t.Total.ViaFlashLoans += r.ViaFlashLoans
		t.Total.ViaBoth += r.ViaBoth
	}
	return t
}

// Format renders the table in the paper's layout — a thin walk over the
// table's structured artifact.
func (t Table1) Format() string {
	return formatTable1((&Report{Table1: t}).table1Artifact())
}

// ---------------------------------------------------------------------------
// Figure 3: Flashbots block ratio per month

// MonthValue is one month's scalar data point.
type MonthValue struct {
	Month types.Month
	Value float64
}

// Fig3Row is one month of the block-ratio series.
type Fig3Row struct {
	Month           types.Month
	FlashbotsBlocks int
	TotalBlocks     int
}

// Ratio is the Flashbots share of the month's blocks.
func (r Fig3Row) Ratio() float64 {
	if r.TotalBlocks == 0 {
		return 0
	}
	return float64(r.FlashbotsBlocks) / float64(r.TotalBlocks)
}

// BuildFigure3 computes the monthly Flashbots vs non-Flashbots block
// proportion.
func BuildFigure3(in Inputs) []Fig3Row {
	return figure3(in, accumulate(in, false))
}

// ---------------------------------------------------------------------------
// Figure 4: estimated Flashbots hashrate per month

// BuildFigure4 estimates the Flashbots hashpower share per month: the
// block share of miners who mined at least one Flashbots block in that
// month (§4.3's estimator).
func BuildFigure4(in Inputs) []MonthValue {
	return figure4(in, accumulate(in, false))
}

// ---------------------------------------------------------------------------
// Figure 5: miners with at least n Flashbots blocks

// Fig5 reports, per month, how many miners mined at least each threshold
// of Flashbots blocks. Thresholds follow the paper (powers of ten); the
// Scaled thresholds adjust for the compressed blocks-per-month so the
// curve shapes are comparable.
type Fig5 struct {
	Thresholds []int
	// Counts[mi][ti] = miners with ≥ Thresholds[ti] Flashbots blocks in
	// month mi.
	Months []types.Month
	Counts [][]int
}

// BuildFigure5 computes the miners-with-n-blocks distribution. scale
// converts paper thresholds to the compressed chain: thresholds are
// multiplied by blocksPerMonth/190000 (mainnet months are ≈190k blocks),
// with a floor of 1.
func BuildFigure5(in Inputs) Fig5 {
	paper := []int{1, 10, 100, 1_000, 10_000}
	factor := float64(in.Chain.Timeline.BlocksPerMonth) / 190_000.0
	thresholds := make([]int, len(paper))
	for i, t := range paper {
		s := int(float64(t) * factor)
		if s < 1 {
			s = 1
		}
		// Keep thresholds strictly increasing after scaling.
		if i > 0 && s <= thresholds[i-1] {
			s = thresholds[i-1] + 1
		}
		thresholds[i] = s
	}
	perMonth := map[types.Month]map[types.Address]int{}
	for _, rec := range in.FBBlocks {
		m := in.Chain.Timeline.MonthOfBlock(rec.BlockNumber)
		if perMonth[m] == nil {
			perMonth[m] = map[types.Address]int{}
		}
		perMonth[m][rec.Miner]++
	}
	f := Fig5{Thresholds: thresholds}
	for m := types.Month(0); m < types.StudyMonths; m++ {
		if len(in.Chain.BlocksInMonth(m)) == 0 {
			continue
		}
		row := make([]int, len(thresholds))
		for _, count := range perMonth[m] {
			for ti, th := range thresholds {
				if count >= th {
					row[ti]++
				}
			}
		}
		f.Months = append(f.Months, m)
		f.Counts = append(f.Counts, row)
	}
	return f
}

// MaxMinersInAnyMonth returns the peak number of distinct Flashbots miners
// (threshold ≥1) across months — the paper found no month above 55.
func (f Fig5) MaxMinersInAnyMonth() int {
	maxC := 0
	for _, row := range f.Counts {
		if len(row) > 0 && row[0] > maxC {
			maxC = row[0]
		}
	}
	return maxC
}

// ---------------------------------------------------------------------------
// Figure 6: sandwiches vs gas price

// Fig6Row is one month of the sandwich/gas correlation series.
type Fig6Row struct {
	Month              types.Month
	FlashbotsSand      int
	NonFlashbotsSand   int
	AvgGasPriceGwei    float64
	MedianGasPriceGwei float64
}

// Fig6 is the full series plus the correlation the paper discusses.
type Fig6 struct {
	Rows []Fig6Row
	// CorrNonFB is the Pearson correlation between monthly non-Flashbots
	// sandwich counts and average gas price.
	CorrNonFB float64
	// CorrAll correlates total sandwich counts with gas price.
	CorrAll float64
}

// BuildFigure6 computes the sandwich/gas-price series. The per-month gas
// sweep walks every receipt — the heaviest loop in the report — so the
// aggregate pass fans months across the worker pool and merges in month
// order.
func BuildFigure6(in Inputs) Fig6 {
	return figure6(in, accumulate(in, true))
}

// ---------------------------------------------------------------------------
// Figure 7: searchers and transactions by MEV type

// Fig7Row is one month of per-type activity.
type Fig7Row struct {
	Month types.Month
	// Searchers holds distinct extractor counts; Txs transaction counts.
	Searchers map[string]int
	Txs       map[string]int
}

// Fig7 series; type keys: "sandwiches", "arbitrages", "liquidations",
// "other".
type Fig7 struct {
	Rows []Fig7Row
}

// BuildFigure7 counts Flashbots searchers and transactions by MEV type per
// month. "other" covers Flashbots transactions not matched by any MEV
// detector — order-dependent or MEV-protected trades.
func BuildFigure7(in Inputs) Fig7 {
	mevTx := map[types.Hash]string{}
	kindKey := map[profit.Kind]string{
		profit.KindSandwich:    "sandwiches",
		profit.KindArbitrage:   "arbitrages",
		profit.KindLiquidation: "liquidations",
	}
	for _, r := range in.Profits {
		if !r.ViaFlashbots {
			continue
		}
		key := kindKey[r.Kind]
		for _, h := range r.Txs {
			mevTx[h] = key
		}
	}
	rows := map[types.Month]*Fig7Row{}
	searcherSets := map[types.Month]map[string]map[types.Address]bool{}
	get := func(m types.Month) (*Fig7Row, map[string]map[types.Address]bool) {
		if rows[m] == nil {
			rows[m] = &Fig7Row{Month: m, Searchers: map[string]int{}, Txs: map[string]int{}}
			searcherSets[m] = map[string]map[types.Address]bool{}
		}
		return rows[m], searcherSets[m]
	}
	for _, rec := range in.FBBlocks {
		m := in.Chain.Timeline.MonthOfBlock(rec.BlockNumber)
		row, sets := get(m)
		for _, tx := range rec.Txs {
			key, ok := mevTx[tx.Hash]
			if !ok {
				key = "other"
			}
			row.Txs[key]++
			if sets[key] == nil {
				sets[key] = map[types.Address]bool{}
			}
			sets[key][tx.EOA] = true
		}
	}
	var f Fig7
	for m := types.Month(0); m < types.StudyMonths; m++ {
		row, ok := rows[m]
		if !ok {
			continue
		}
		for key, set := range searcherSets[m] {
			row.Searchers[key] = len(set)
		}
		f.Rows = append(f.Rows, *row)
	}
	return f
}

// ---------------------------------------------------------------------------
// Figure 8: sandwich profit distributions

// Fig8 summarizes sandwich profit (net ETH) across the four
// subpopulations of the paper's Figure 8.
type Fig8 struct {
	MinerNonFB    stats.Summary
	MinerFB       stats.Summary
	SearcherNonFB stats.Summary
	SearcherFB    stats.Summary
}

// BuildFigure8 splits sandwich profits by extractor class (miner vs
// searcher, from on-chain coinbase evidence) and channel.
func BuildFigure8(in Inputs) Fig8 {
	return figure8(in, MinerSetOnChain(in.Chain))
}

// figure8 is BuildFigure8 against a precomputed miner set.
func figure8(in Inputs, miners map[types.Address]bool) Fig8 {
	var mFB, mNon, sFB, sNon []float64
	for _, r := range in.Profits {
		if r.Kind != profit.KindSandwich {
			continue
		}
		netETH := r.NetETH.Ether()
		isMiner := miners[r.Extractor]
		switch {
		case isMiner && r.ViaFlashbots:
			mFB = append(mFB, netETH)
		case isMiner:
			mNon = append(mNon, netETH)
		case r.ViaFlashbots:
			sFB = append(sFB, netETH)
		default:
			sNon = append(sNon, netETH)
		}
	}
	return Fig8{
		MinerNonFB:    stats.Summarize(mNon),
		MinerFB:       stats.Summarize(mFB),
		SearcherNonFB: stats.Summarize(sNon),
		SearcherFB:    stats.Summarize(sFB),
	}
}

// ---------------------------------------------------------------------------
// Figure 9 and §6.2: private vs public MEV

// Fig9 is the private/public split of sandwich MEV in the observation
// window.
type Fig9 struct {
	Split privinfer.SandwichSplit
}

// BuildFigure9 classifies window sandwiches via the §6.1 inference.
func BuildFigure9(in Inputs, inf *privinfer.Inferrer) Fig9 {
	return Fig9{Split: inf.SplitSandwiches(in.Detect.Sandwiches)}
}

// ---------------------------------------------------------------------------
// §4.1: bundle statistics

// BundleStats reproduces the §4.1 aggregate bundle numbers.
type BundleStats struct {
	Bundles         int
	FlashbotsBlocks int
	BundlesPerBlock stats.Summary
	TxsPerBundle    stats.Summary
	SingleTxBundles int
	MaxBundleTxs    int
	// ByType counts bundles per BundleType name.
	ByType map[string]int
}

// SingleTxShare is the fraction of bundles containing one transaction.
func (s BundleStats) SingleTxShare() float64 {
	if s.Bundles == 0 {
		return 0
	}
	return float64(s.SingleTxBundles) / float64(s.Bundles)
}

// BuildBundleStats aggregates the public blocks API dataset.
func BuildBundleStats(in Inputs) BundleStats {
	out := BundleStats{ByType: map[string]int{}}
	var perBlock, perBundle []float64
	for _, rec := range in.FBBlocks {
		type bkey struct{ id uint64 }
		sizes := map[bkey]int{}
		btype := map[bkey]flashbots.BundleType{}
		for _, tx := range rec.Txs {
			k := bkey{tx.BundleID}
			sizes[k]++
			btype[k] = tx.BundleType
		}
		if len(sizes) == 0 {
			continue
		}
		out.FlashbotsBlocks++
		perBlock = append(perBlock, float64(len(sizes)))
		keys := make([]bkey, 0, len(sizes))
		for k := range sizes {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].id < keys[j].id })
		for _, k := range keys {
			n := sizes[k]
			out.Bundles++
			perBundle = append(perBundle, float64(n))
			if n == 1 {
				out.SingleTxBundles++
			}
			if n > out.MaxBundleTxs {
				out.MaxBundleTxs = n
			}
			out.ByType[btype[k].String()]++
		}
	}
	out.BundlesPerBlock = stats.Summarize(perBlock)
	out.TxsPerBundle = stats.Summarize(perBundle)
	return out
}

// ---------------------------------------------------------------------------
// §5.2: negative profits

// NegativeProfits summarizes unprofitable Flashbots sandwiches.
type NegativeProfits struct {
	FlashbotsSandwiches int
	Unprofitable        int
	TotalLossETH        float64
}

// Share is the unprofitable fraction (the paper: ≈1.58 %).
func (n NegativeProfits) Share() float64 {
	if n.FlashbotsSandwiches == 0 {
		return 0
	}
	return float64(n.Unprofitable) / float64(n.FlashbotsSandwiches)
}

// BuildNegativeProfits aggregates §5.2.
func BuildNegativeProfits(in Inputs) NegativeProfits {
	var out NegativeProfits
	for _, r := range in.Profits {
		if r.Kind != profit.KindSandwich || !r.ViaFlashbots {
			continue
		}
		out.FlashbotsSandwiches++
		if r.NetETH < 0 {
			out.Unprofitable++
			out.TotalLossETH += -r.NetETH.Ether()
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Report: everything together

// Report bundles every reproduced artifact.
type Report struct {
	Table1    Table1
	Fig3      []Fig3Row
	Fig4      []MonthValue
	Fig5      Fig5
	Fig6      Fig6
	Fig7      Fig7
	Fig8      Fig8
	Fig9      *Fig9 // nil without an observer
	Bundles   BundleStats
	Negatives NegativeProfits
	// Damage is the victim-loss extension analysis.
	Damage VictimDamage
	// Concentration is the §4.4 mining-concentration analysis.
	Concentration Concentration
	// MEVSplit extends Figure 9 to all MEV kinds (nil without an observer).
	MEVSplit *privinfer.MEVSplit
	// PrivateLinks is the §6.3 account→miner attribution.
	PrivateLinks []privinfer.MinerLink
	// VantageSensitivity is the observation-network robustness analysis:
	// how the §6 private counts move with the vantage you listen from.
	VantageSensitivity VantageSensitivity
}

// Build assembles the full report. inf may be nil when no observation
// window exists. It is the batch path of the incremental Accumulator
// seam: one parallel aggregate pass over the finished chain, then the
// shared builder fan-out — exactly what a streamed accumulator snapshots
// at the same height.
func Build(in Inputs, inf *privinfer.Inferrer) *Report {
	return accumulate(in, true).Report(in, inf)
}

// builderSpec declares one report artifact: its span label, the archive
// columns a column-projected build of it needs (nil = the full dataset),
// whether it needs the §6 inferrer, and the builder itself. Builders are
// independent read-only passes over the inputs; each writes a distinct
// Report field, which keeps the fan-out assembly deterministic.
type builderSpec struct {
	name string
	// cols names the archive columns (internal/archive column names) the
	// builder reads. The projectable artifacts touch only block headers
	// and the Flashbots API records; everything else walks transactions,
	// receipts or the observation capture and needs a complete dataset.
	cols     []string
	needsInf bool
	run      func(in Inputs, acc *Accumulator, inf *privinfer.Inferrer, r *Report)
}

// headerCols is the projection the header-and-relay artifacts share:
// "headers" and "flashbots" name archive columns (archive.ColHeaders,
// archive.ColFlashbots — spelled out here so measure does not import the
// storage layer).
var headerCols = []string{"headers", "flashbots"}

var builderSpecs = []builderSpec{
	{"table1", nil, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Table1 = BuildTable1(in) }},
	{"fig3", headerCols, false, func(in Inputs, acc *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Fig3 = figure3(in, acc) }},
	{"fig4", headerCols, false, func(in Inputs, acc *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Fig4 = figure4(in, acc) }},
	{"fig5", headerCols, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Fig5 = BuildFigure5(in) }},
	{"fig6", nil, false, func(in Inputs, acc *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Fig6 = figure6(in, acc) }},
	{"fig7", nil, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Fig7 = BuildFigure7(in) }},
	{"fig8", nil, false, func(in Inputs, acc *Accumulator, _ *privinfer.Inferrer, r *Report) {
		r.Fig8 = figure8(in, acc.minerSet)
	}},
	{"bundles", headerCols, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Bundles = BuildBundleStats(in) }},
	{"negatives", nil, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) {
		r.Negatives = BuildNegativeProfits(in)
	}},
	{"damage", nil, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) { r.Damage = BuildVictimDamage(in) }},
	{"concentration", headerCols, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) {
		r.Concentration = BuildConcentration(in)
	}},
	{"vantages", nil, false, func(in Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) {
		r.VantageSensitivity = BuildVantageSensitivity(in)
	}},
	{"fig9", nil, true, func(in Inputs, _ *Accumulator, inf *privinfer.Inferrer, r *Report) {
		f9 := BuildFigure9(in, inf)
		r.Fig9 = &f9
	}},
	{"mevsplit", nil, true, func(in Inputs, _ *Accumulator, inf *privinfer.Inferrer, r *Report) {
		split := inf.SplitAll(in.Detect)
		r.MEVSplit = &split
	}},
	{"privatelinks", nil, true, func(in Inputs, _ *Accumulator, inf *privinfer.Inferrer, r *Report) {
		r.PrivateLinks = inf.LinkPrivateSandwiches(in.Detect.Sandwiches)
	}},
}

// ProjectionColumns returns the archive columns a projected build of the
// named artifact needs, or nil when the artifact requires a complete
// dataset (or is unknown). Callers pass the result to
// archive.ReadOptions.Columns so a cold build decodes only those columns.
func ProjectionColumns(artifact string) []string {
	for i := range builderSpecs {
		if builderSpecs[i].name == artifact && builderSpecs[i].cols != nil {
			return append([]string(nil), builderSpecs[i].cols...)
		}
	}
	return nil
}

// runBuilders fans the given specs across the worker pool under a
// StageBuild span, one StageArtifact child per builder.
func runBuilders(in Inputs, acc *Accumulator, inf *privinfer.Inferrer, specs []builderSpec) *Report {
	sp := in.Span.Child(obs.StageBuild)
	defer sp.End()
	r := &Report{}
	parallel.MapSpan(sp, len(specs), in.workers(), func(i int) struct{} {
		bsp := sp.Child(obs.StageArtifact)
		bsp.SetLabel(specs[i].name)
		specs[i].run(in, acc, inf, r)
		bsp.End()
		return struct{}{}
	})
	return r
}

// buildWith assembles the full report from precomputed chain aggregates.
func buildWith(in Inputs, acc *Accumulator, inf *privinfer.Inferrer) *Report {
	specs := make([]builderSpec, 0, len(builderSpecs))
	for _, spec := range builderSpecs {
		if spec.needsInf && inf == nil {
			continue
		}
		specs = append(specs, spec)
	}
	return runBuilders(in, acc, inf, specs)
}

// BuildProjection builds only the named artifacts into an otherwise-zero
// Report. Every requested artifact must be projectable (ProjectionColumns
// non-nil); the inputs need only the columns the artifacts declare, so
// callers feed it a column-projected dataset restore. The artifact values
// it does build are identical to a full Build's.
func BuildProjection(in Inputs, artifacts []string) (*Report, error) {
	var specs []builderSpec
	for _, name := range artifacts {
		found := false
		for _, spec := range builderSpecs {
			if spec.name != name {
				continue
			}
			if spec.cols == nil {
				return nil, fmt.Errorf("measure: artifact %q is not projectable", name)
			}
			specs = append(specs, spec)
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("measure: unknown artifact %q", name)
		}
	}
	acc := accumulate(in, false)
	return runBuilders(in, acc, nil, specs), nil
}

// ---------------------------------------------------------------------------
// Extension: victim damage

// VictimDamage quantifies what sandwich victims lost to slippage — the
// externality the paper's introduction motivates (extraction "from all
// participants in the Ethereum ecosystem"). The attacker's gross gain is
// extracted from the victim's execution price, so it lower-bounds the
// victim's loss.
type VictimDamage struct {
	Victims  int
	TotalETH float64
	PerMonth map[types.Month]float64
	Summary  stats.Summary
}

// BuildVictimDamage aggregates per-victim losses from sandwich records.
func BuildVictimDamage(in Inputs) VictimDamage {
	out := VictimDamage{PerMonth: map[types.Month]float64{}}
	var xs []float64
	for _, r := range in.Profits {
		if r.Kind != profit.KindSandwich {
			continue
		}
		loss := r.GainETH.Ether()
		if loss <= 0 {
			continue
		}
		out.Victims++
		out.TotalETH += loss
		out.PerMonth[r.Month] += loss
		xs = append(xs, loss)
	}
	out.Summary = stats.Summarize(xs)
	return out
}

// ---------------------------------------------------------------------------
// §4.4 extension: mining concentration

// Concentration quantifies how concentrated Flashbots block production is
// — the paper's "mining is just as centralized as it was prior to
// Flashbots" takeaway.
type Concentration struct {
	// Gini of per-miner Flashbots block counts, per month.
	GiniPerMonth map[types.Month]float64
	// Top2Share is the fraction of all Flashbots blocks mined by the two
	// most productive miners over the whole dataset.
	Top2Share float64
	// Miners is the number of distinct Flashbots miners overall.
	Miners int
}

// BuildConcentration aggregates §4.4 concentration metrics.
func BuildConcentration(in Inputs) Concentration {
	out := Concentration{GiniPerMonth: map[types.Month]float64{}}
	perMonth := map[types.Month]map[types.Address]int{}
	total := map[types.Address]int{}
	blocks := 0
	for _, rec := range in.FBBlocks {
		m := in.Chain.Timeline.MonthOfBlock(rec.BlockNumber)
		if perMonth[m] == nil {
			perMonth[m] = map[types.Address]int{}
		}
		perMonth[m][rec.Miner]++
		total[rec.Miner]++
		blocks++
	}
	for m, counts := range perMonth {
		xs := make([]float64, 0, len(counts))
		for _, n := range counts {
			xs = append(xs, float64(n))
		}
		sort.Float64s(xs) // Gini is order-insensitive; pin the order anyway
		out.GiniPerMonth[m] = stats.Gini(xs)
	}
	out.Miners = len(total)
	var all []int
	for _, n := range total {
		all = append(all, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top2 := 0
	for i := 0; i < 2 && i < len(all); i++ {
		top2 += all[i]
	}
	if blocks > 0 {
		out.Top2Share = float64(top2) / float64(blocks)
	}
	return out
}
