package measure

// Text rendering of the structured artifact model. WriteReportText walks
// the report's artifacts in paper order and renders each section; its
// output is byte-identical to the pre-model monolithic renderer (golden
// tested at the repository root). WriteText renders one artifact
// standalone — the text format of the HTTP query layer.

import (
	"fmt"
	"io"
	"strings"

	"mevscope/internal/types"
)

// Bar renders frac as a width-character #/. gauge.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}

// shortAddr compresses a 0x-hex address to its 4-byte prefix, matching
// types.Address.Short.
func shortAddr(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return s
}

// WriteReportText renders the full report as text, in paper order, from
// its artifact model. Sections that need an observation window render
// only when their artifacts carry rows.
func WriteReportText(w io.Writer, r *Report) {
	byName := map[string]Artifact{}
	for _, a := range r.Artifacts() {
		byName[a.Name] = a
	}

	fmt.Fprintf(w, "=== %s ===\n%s\n", byName["table1"].Title, formatTable1(byName["table1"]))
	textFig3(w, byName["fig3"])
	textFig4(w, byName["fig4"])
	textFig5(w, byName["fig5"])
	textFig6(w, byName["fig6"])
	textFig7(w, byName["fig7"])
	textFig8(w, byName["fig8"])
	if fig9 := byName["fig9"]; len(fig9.Rows) > 0 {
		textFig9(w, fig9, byName["mevsplit"])
		fmt.Fprintln(w)
	}
	textBundles(w, byName["bundles"])
	fmt.Fprintln(w)
	textNegatives(w, byName["negatives"])
	fmt.Fprintln(w)
	textDamage(w, byName["damage"])
	fmt.Fprintln(w)
	textConcentration(w, byName["concentration"])
	fmt.Fprintln(w)
	if links := byName["private_links"]; len(links.Rows) > 0 {
		textPrivateLinks(w, links)
	}
	// The sensitivity section only appears for multi-vantage worlds: a
	// single vantage has nothing to compare against (and the paper-
	// baseline report stays byte-identical to the golden capture).
	if vs := byName["vantage_sensitivity"]; vs.Scalar("vantages").Int > 1 {
		fmt.Fprintln(w)
		textVantageSensitivity(w, vs)
	}
}

// WriteText renders one artifact as a standalone text section.
func WriteText(w io.Writer, a Artifact) {
	switch a.Name {
	case "table1":
		fmt.Fprintf(w, "=== %s ===\n%s", a.Title, formatTable1(a))
	case "fig3":
		textFig3(w, a)
	case "fig4":
		textFig4(w, a)
	case "fig5":
		textFig5(w, a)
	case "fig6":
		textFig6(w, a)
	case "fig7":
		textFig7(w, a)
	case "fig8":
		textFig8(w, a)
	case "fig9":
		textFig9(w, a, Artifact{})
	case "bundles":
		textBundles(w, a)
	case "negatives":
		textNegatives(w, a)
	case "damage":
		textDamage(w, a)
	case "concentration":
		textConcentration(w, a)
	case "private_links":
		textPrivateLinks(w, a)
	case "vantage_sensitivity":
		textVantageSensitivity(w, a)
	default:
		textGeneric(w, a)
	}
}

// textGeneric renders an artifact with no bespoke layout: title, rows as
// tab-separated cells, scalars as name=value lines.
func textGeneric(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	for _, row := range a.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, v.Text())
		}
		fmt.Fprintln(w)
	}
	for _, s := range a.Scalars {
		fmt.Fprintf(w, "%s=%s\n", s.Name, s.Value.Text())
	}
}

// formatTable1 renders Table 1 in the paper's layout.
func formatTable1(a Artifact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %22s %18s %14s\n", "MEV Strategy", "Extractions", "Via Flashbots", "Via Flash Loans", "Via Both")
	pct := func(n, total int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	for _, row := range a.Rows {
		ex := row[1].Int
		fmt.Fprintf(&b, "%-12s %12d %12d (%5.2f%%) %10d (%4.2f%%) %7d (%4.2f%%)\n",
			row[0].Str, ex,
			row[2].Int, pct(row[2].Int, ex),
			row[3].Int, pct(row[3].Int, ex),
			row[4].Int, pct(row[4].Int, ex))
	}
	return b.String()
}

func textFig3(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%8s  %5d / %5d  %6.1f%%  %s\n",
			row[0].Month, row[1].Int, row[2].Int, 100*row[3].Float, Bar(row[3].Float, 40))
	}
	fmt.Fprintln(w)
}

func textFig4(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%8s  %6.1f%%  %s\n", row[0].Month, 100*row[1].Float, Bar(row[1].Float, 40))
	}
	fmt.Fprintln(w)
}

func textFig5(w io.Writer, a Artifact) {
	thresholds := fig5Thresholds(a)
	fmt.Fprintf(w, "=== Figure 5: miners with ≥ n Flashbots blocks (scaled thresholds %v) ===\n", thresholds)
	fmt.Fprintf(w, "%8s", "month")
	for _, th := range thresholds {
		fmt.Fprintf(w, " %6s", fmt.Sprintf("≥%d", th))
	}
	fmt.Fprintln(w)
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%8s", row[0].Month)
		for _, c := range row[1:] {
			fmt.Fprintf(w, " %6d", c.Int)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "peak distinct Flashbots miners in a month: %d\n\n", a.Scalar("max_miners_in_any_month").Int)
}

func textFig6(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "%8s %10s %10s %12s\n", "month", "FB sand", "nonFB sand", "avg gas(gwei)")
	for _, row := range a.Rows {
		marks := ""
		if row[0].Month == types.BerlinForkMonth {
			marks = "  <- Berlin fork"
		}
		if row[0].Month == types.LondonForkMonth {
			marks = "  <- London fork"
		}
		fmt.Fprintf(w, "%8s %10d %10d %12.1f%s\n", row[0].Month, row[1].Int, row[2].Int, row[3].Float, marks)
	}
	fmt.Fprintf(w, "correlation(non-FB sandwiches, gas): %.3f; correlation(all sandwiches, gas): %.3f\n\n",
		a.Scalar("corr_non_fb").Float, a.Scalar("corr_all").Float)
}

func textFig7(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "%8s |", "month")
	for _, k := range fig7Keys {
		fmt.Fprintf(w, " %11s |", k+" S/T")
	}
	fmt.Fprintln(w)
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%8s |", row[0].Month)
		for i := range fig7Keys {
			fmt.Fprintf(w, " %5d/%-5d |", row[1+2*i].Int, row[2+2*i].Int)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// fig8Labels maps subpopulation names to the text report's row labels.
var fig8Labels = map[string]string{
	"miner_non_flashbots":    "miners, non-Flashbots:",
	"miner_flashbots":        "miners, Flashbots:",
	"searcher_non_flashbots": "searchers, non-FB:",
	"searcher_flashbots":     "searchers, Flashbots:",
}

func textFig8(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	for i, row := range a.Rows {
		summary := fmt.Sprintf("n=%d mean=%.4f med=%.4f std=%.4f min=%.4f max=%.4f",
			row[1].Int, row[2].Float, row[3].Float, row[4].Float, row[5].Float, row[6].Float)
		sep := "\n"
		if i == len(a.Rows)-1 {
			sep = "\n\n"
		}
		fmt.Fprintf(w, "%-22s %s%s", fig8Labels[row[0].Str], summary, sep)
	}
}

// textFig9 renders the private/public split; when the mevsplit artifact
// carries rows they extend the section to the other MEV kinds.
func textFig9(w io.Writer, a, split Artifact) {
	share := func(channel string) float64 {
		for _, row := range a.Rows {
			if row[0].Str == channel {
				return row[2].Float
			}
		}
		return 0
	}
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "total %d | via Flashbots %.1f%% | private non-Flashbots %.1f%% | public %.1f%%\n",
		a.Scalar("total").Int, 100*share("flashbots"), 100*share("private_non_flashbots"), 100*share("public"))
	for _, row := range split.Rows {
		fmt.Fprintf(w, "%-12s total %d | FB %.1f%% | private %.1f%% | public %.1f%%\n",
			row[0].Str+":", row[1].Int, 100*row[2].Float, 100*row[3].Float, 100*row[4].Float)
	}
}

func textBundles(w io.Writer, a Artifact) {
	byType := map[string]int64{}
	for _, row := range a.Rows {
		byType[row[0].Str] = row[1].Int
	}
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "bundles=%d in %d Flashbots blocks; bundles/block mean=%.2f median=%.0f max=%.0f\n",
		a.Scalar("bundles").Int, a.Scalar("flashbots_blocks").Int,
		a.Scalar("bundles_per_block_mean").Float, a.Scalar("bundles_per_block_median").Float,
		a.Scalar("bundles_per_block_max").Float)
	fmt.Fprintf(w, "txs/bundle mean=%.2f median=%.0f max=%d; single-tx bundles %.1f%%\n",
		a.Scalar("txs_per_bundle_mean").Float, a.Scalar("txs_per_bundle_median").Float,
		a.Scalar("max_bundle_txs").Int, 100*a.Scalar("single_tx_share").Float)
	fmt.Fprintf(w, "by type: flashbots=%d rogue=%d miner-payout=%d\n",
		byType["flashbots"], byType["rogue"], byType["miner-payout"])
}

func textNegatives(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "unprofitable Flashbots sandwiches: %d of %d (%.2f%%), total loss %.2f ETH\n",
		a.Scalar("unprofitable").Int, a.Scalar("flashbots_sandwiches").Int,
		100*a.Scalar("share").Float, a.Scalar("total_loss_eth").Float)
}

func textDamage(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "victims=%d total=%.2f ETH mean=%.4f median=%.4f\n",
		a.Scalar("victims").Int, a.Scalar("total_eth").Float,
		a.Scalar("mean_eth").Float, a.Scalar("median_eth").Float)
}

func textConcentration(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "distinct Flashbots miners: %d; top-2 share of Flashbots blocks: %.1f%%\n",
		a.Scalar("miners").Int, 100*a.Scalar("top2_share").Float)
}

func textVantageSensitivity(w io.Writer, a Artifact) {
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	nv := int(a.Scalar("vantages").Int)
	view := a.Scalar("view").Str
	if view == "" {
		view = "vantage:0"
	}
	fmt.Fprintf(w, "vantages: %d; report classified against view %q; union observed %d pending txs, %d private sandwiches\n",
		nv, view, a.Scalar("union_observed").Int, a.Scalar("union_private_sandwiches").Int)
	for i := 0; i < nv; i++ {
		prefix := fmt.Sprintf("vantage%d", i)
		fmt.Fprintf(w, "  vantage %d: observed %6d  private sandwiches %4d  (+%d vs union)\n",
			i, a.Scalar(prefix+"_observed").Int, a.Scalar(prefix+"_private_sandwiches").Int,
			a.Scalar(prefix+"_private_delta_vs_union").Int)
	}
	fmt.Fprintf(w, "%8s", "month")
	for i := 0; i < nv; i++ {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("v%d cov", i))
	}
	fmt.Fprintln(w)
	// Rows come vantage-major inside each month; fold them back into one
	// coverage line per month.
	for ri := 0; ri < len(a.Rows); ri += nv {
		fmt.Fprintf(w, "%8s", a.Rows[ri][0].Month)
		for i := 0; i < nv && ri+i < len(a.Rows); i++ {
			fmt.Fprintf(w, " %8.1f%%", 100*a.Rows[ri+i][5].Float)
		}
		fmt.Fprintln(w)
	}
}

func textPrivateLinks(w io.Writer, a Artifact) {
	single := 0
	for _, row := range a.Rows {
		if row[3].Str != "" {
			single++
		}
	}
	fmt.Fprintf(w, "=== %s ===\n", a.Title)
	fmt.Fprintf(w, "accounts: %d; single-miner accounts: %d\n", len(a.Rows), single)
	for i, row := range a.Rows {
		if i >= 8 {
			break
		}
		tag := fmt.Sprintf("%d miners", row[2].Int)
		if row[3].Str != "" {
			tag = "single miner " + shortAddr(row[3].Str)
		}
		fmt.Fprintf(w, "  %s  %4d private sandwiches  (%s)\n", shortAddr(row[0].Str), row[1].Int, tag)
	}
}
