package measure

// Month partials: the memoization unit of the serving tier's third cache
// level. A Partial freezes the post-analysis state of every measurement
// stage for exactly one study month — scanner extractions, profit
// records, inference verdicts and the accumulator's chain aggregates —
// so a range request can assemble its report by merging the partials of
// its months instead of re-running detect→profit→privinfer over blocks
// it has analyzed before.
//
// The merge is deterministic and exact: every per-month slice is
// concatenated in the same order the full-range pipeline would have
// produced it (detections in block order, profit records kind-major),
// the accumulator is reconstituted from the frozen per-month aggregates,
// and inference verdicts are replayed through privinfer.FromVerdicts so
// the §6 builders see the same classifications a live observer would
// have produced. Verdicts are month-stable under the cross-boundary
// observation rule (PR 3): a single-month restore carries every
// observation log up to that month's end, and a transaction can never be
// observed pending after it is mined, so later months add nothing to an
// earlier month's verdicts. The result is byte-identical to a full-range
// analysis — the property the query layer's partial cache relies on.
//
// Partials serialize to JSON (every field is exported); the round trip
// preserves everything a merge reads.

import (
	"bytes"
	"fmt"
	"sort"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/flashbots"
	"mevscope/internal/obs"
	"mevscope/internal/types"
)

// Partial is one analyzed study month, frozen for reuse.
type Partial struct {
	// Month is the study month this partial covers.
	Month types.Month `json:"month"`
	// Timeline is the month's restore timeline, re-anchored so
	// StartBlock is the month's first block (archive single-month reads
	// produce exactly this anchoring).
	Timeline types.Timeline `json:"timeline"`
	// WETH is the dataset's WETH address.
	WETH types.Address `json:"weth"`

	// Headers are the month's block headers in height order — enough to
	// rebuild the header-level chain the builders consult (month
	// boundaries, per-block miners).
	Headers []types.Header `json:"headers"`
	// GasSum and Gas freeze the month's receipt gas-price aggregate
	// (the Figure 6 sweep) exactly as the accumulator computed it.
	GasSum float64   `json:"gas_sum"`
	Gas    []float64 `json:"gas,omitempty"`

	// FBBlocks are the month's Flashbots public-API records.
	FBBlocks []flashbots.BlockRecord `json:"fb_blocks,omitempty"`

	// Detector extractions, in block order.
	Sandwiches   []detect.Sandwich    `json:"sandwiches,omitempty"`
	Arbitrages   []detect.Arbitrage   `json:"arbitrages,omitempty"`
	Liquidations []detect.Liquidation `json:"liquidations,omitempty"`
	// FlashLoanTxs is the month's flash-loan transaction set, sorted for
	// a deterministic serialization.
	FlashLoanTxs []types.Hash `json:"flash_loan_txs,omitempty"`

	// Resolved profit records, split by kind and kept in detection
	// order: the full-range resolver emits records kind-major (all
	// sandwiches, then all arbitrages, then all liquidations), so a
	// merged range concatenates each kind across months before
	// concatenating kinds.
	SandwichProfits    []profit.Record `json:"sandwich_profits,omitempty"`
	ArbitrageProfits   []profit.Record `json:"arbitrage_profits,omitempty"`
	LiquidationProfits []profit.Record `json:"liquidation_profits,omitempty"`

	// HasVerdicts records whether the month was analyzed under an open
	// observation window; when false the verdict slices are empty and a
	// merge synthesizes out-of-window verdicts.
	HasVerdicts bool `json:"has_verdicts"`
	// Per-detection §6.1 classifications, index-aligned with the
	// detection slices above.
	SandwichVerdicts    []privinfer.Verdict `json:"sandwich_verdicts,omitempty"`
	ArbitrageVerdicts   []privinfer.Verdict `json:"arbitrage_verdicts,omitempty"`
	LiquidationVerdicts []privinfer.Verdict `json:"liquidation_verdicts,omitempty"`

	// Vantages is the vantage-sensitivity analysis of this month's
	// restore. Its observation counts cover every log up to the month's
	// end (the PR 3 prefix rule), so the last partial of a merged range
	// carries the range's coverage stats while the private-sandwich
	// counts sum across months.
	Vantages VantageSensitivity `json:"vantages"`
}

// NewPartial freezes a single-month analysis. The inputs must cover
// exactly one study month (the chain's first and last blocks fall in the
// same month); inf may be nil when the month has no observation window.
func NewPartial(in Inputs, inf *privinfer.Inferrer) (*Partial, error) {
	if in.Chain == nil || in.Chain.Head() == nil {
		return nil, fmt.Errorf("measure: partial needs a non-empty chain")
	}
	tl := in.Chain.Timeline
	first := tl.MonthOfBlock(tl.StartBlock)
	last := tl.MonthOfBlock(in.Chain.Head().Header.Number)
	if first != last {
		return nil, fmt.Errorf("measure: partial covers months %d..%d, want exactly one", first, last)
	}
	acc := accumulate(in, true)
	agg := &acc.months[first]

	p := &Partial{
		Month:    first,
		Timeline: tl,
		WETH:     in.WETH,
		GasSum:   agg.gasSum,
		Gas:      agg.gas,
		FBBlocks: in.FBBlocks,
	}
	blocks := in.Chain.Blocks()
	p.Headers = make([]types.Header, len(blocks))
	for i, b := range blocks {
		p.Headers[i] = b.Header
	}
	if in.Detect != nil {
		p.Sandwiches = in.Detect.Sandwiches
		p.Arbitrages = in.Detect.Arbitrages
		p.Liquidations = in.Detect.Liquidations
		p.FlashLoanTxs = make([]types.Hash, 0, len(in.Detect.FlashLoanTxs))
		for h := range in.Detect.FlashLoanTxs {
			p.FlashLoanTxs = append(p.FlashLoanTxs, h)
		}
		sort.Slice(p.FlashLoanTxs, func(i, j int) bool {
			return bytes.Compare(p.FlashLoanTxs[i][:], p.FlashLoanTxs[j][:]) < 0
		})
	}
	for _, r := range in.Profits {
		switch r.Kind {
		case profit.KindSandwich:
			p.SandwichProfits = append(p.SandwichProfits, r)
		case profit.KindArbitrage:
			p.ArbitrageProfits = append(p.ArbitrageProfits, r)
		case profit.KindLiquidation:
			p.LiquidationProfits = append(p.LiquidationProfits, r)
		}
	}
	if inf != nil && in.Detect != nil {
		p.HasVerdicts = true
		p.SandwichVerdicts, p.ArbitrageVerdicts, p.LiquidationVerdicts = inf.Verdicts(in.Detect)
	}
	// The vantage analysis is computed under the globally-anchored
	// timeline: a single-month restore is re-anchored at its month, and
	// Timeline.MonthOfBlock clamps anything below the anchor to it —
	// which would collapse earlier observation months into this one.
	// Block numbering is calendar-aligned across anchorings
	// (types.TimelineFrom), so un-anchoring recovers true months; the
	// merge re-clamps them to the assembled range's own anchor,
	// reproducing exactly what a full-range analysis computes.
	gin := in
	gtl := tl
	gtl.StartBlock -= uint64(gtl.FirstMonth) * gtl.BlocksPerMonth
	gtl.FirstMonth = 0
	gc := *in.Chain
	gc.Timeline = gtl
	gin.Chain = &gc
	p.Vantages = BuildVantageSensitivity(gin)
	return p, nil
}

// SizeBytes estimates the partial's resident size for byte-accounted
// cache eviction. It is an approximation (struct sizes, slice headers
// and map overhead are folded into per-element constants), deliberately
// erring high so the cache stays within budget.
func (p *Partial) SizeBytes() int64 {
	const (
		headerSize    = 96
		fbTxSize      = 48
		sandwichSize  = 256
		arbitrageSize = 192
		liqSize       = 192
		recordSize    = 160
		verdictSize   = 2
		hashSize      = 32
	)
	n := int64(512) // struct + slice headers
	n += int64(len(p.Headers)) * headerSize
	n += int64(len(p.Gas)) * 8
	for i := range p.FBBlocks {
		n += 96 + int64(len(p.FBBlocks[i].Txs))*fbTxSize
	}
	n += int64(len(p.Sandwiches)) * sandwichSize
	for i := range p.Arbitrages {
		n += arbitrageSize + int64(len(p.Arbitrages[i].Pools))*20
	}
	n += int64(len(p.Liquidations)) * liqSize
	n += int64(len(p.FlashLoanTxs)) * hashSize
	n += int64(len(p.SandwichProfits)+len(p.ArbitrageProfits)+len(p.LiquidationProfits)) * recordSize
	n += int64(len(p.SandwichVerdicts)+len(p.ArbitrageVerdicts)+len(p.LiquidationVerdicts)) * verdictSize
	for i := range p.Vantages.Vantages {
		n += 64 + int64(len(p.Vantages.Vantages[i].PerMonth))*16
	}
	n += 64 + int64(len(p.Vantages.Union.PerMonth))*16
	return n
}

// MergePartials assembles the report of a contiguous month range from
// its frozen partials. view labels the merged vantage-sensitivity
// artifact (the observation view the partials were analyzed under);
// workers and sp parameterize the builder fan-out exactly like a full
// Build. The report is byte-identical to a full-range analysis of the
// same months under the same view.
func MergePartials(parts []*Partial, view string, workers int, sp *obs.Span) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("measure: merge of zero partials")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("measure: nil partial at index %d", i)
		}
		if p.Month < 0 || p.Month >= types.StudyMonths {
			return nil, fmt.Errorf("measure: partial month %d outside the study", p.Month)
		}
		if want := parts[0].Month + types.Month(i); p.Month != want {
			return nil, fmt.Errorf("measure: partials not contiguous: index %d is month %d, want %d", i, p.Month, want)
		}
	}

	// Rebuild the header-level chain over the first partial's anchoring.
	tl := parts[0].Timeline
	c := chain.New(tl)
	var nHeaders int
	for _, p := range parts {
		nHeaders += len(p.Headers)
	}
	blocks := make([]types.Block, nHeaders)
	bi := 0
	for _, p := range parts {
		for i := range p.Headers {
			b := &blocks[bi]
			bi++
			b.Header = p.Headers[i]
			b.Seal()
			if err := c.Append(b); err != nil {
				return nil, fmt.Errorf("measure: merge chain: %w", err)
			}
		}
	}
	if c.Head() == nil {
		return nil, fmt.Errorf("measure: merged partials hold no blocks")
	}

	// Concatenate detections in month order, preallocated.
	var nSand, nArb, nLiq, nFlash, nFB int
	for _, p := range parts {
		nSand += len(p.Sandwiches)
		nArb += len(p.Arbitrages)
		nLiq += len(p.Liquidations)
		nFlash += len(p.FlashLoanTxs)
		nFB += len(p.FBBlocks)
	}
	res := &detect.Result{
		Sandwiches:   make([]detect.Sandwich, 0, nSand),
		Arbitrages:   make([]detect.Arbitrage, 0, nArb),
		Liquidations: make([]detect.Liquidation, 0, nLiq),
		FlashLoanTxs: make(map[types.Hash]bool, nFlash),
	}
	fb := make([]flashbots.BlockRecord, 0, nFB)
	for _, p := range parts {
		res.Sandwiches = append(res.Sandwiches, p.Sandwiches...)
		res.Arbitrages = append(res.Arbitrages, p.Arbitrages...)
		res.Liquidations = append(res.Liquidations, p.Liquidations...)
		for _, h := range p.FlashLoanTxs {
			res.FlashLoanTxs[h] = true
		}
		fb = append(fb, p.FBBlocks...)
	}
	fbset := make(map[types.Hash]flashbots.BundleType)
	for i := range fb {
		for _, tx := range fb[i].Txs {
			fbset[tx.Hash] = tx.BundleType
		}
	}

	// Profit records kind-major, each kind in month order — the exact
	// emission order of the full-range resolver.
	var nProf int
	for _, p := range parts {
		nProf += len(p.SandwichProfits) + len(p.ArbitrageProfits) + len(p.LiquidationProfits)
	}
	profits := make([]profit.Record, 0, nProf)
	for _, p := range parts {
		profits = append(profits, p.SandwichProfits...)
	}
	for _, p := range parts {
		profits = append(profits, p.ArbitrageProfits...)
	}
	for _, p := range parts {
		profits = append(profits, p.LiquidationProfits...)
	}

	// Reconstitute the accumulator from the frozen per-month aggregates:
	// blocks and miners come from the headers, the gas sweep from the
	// stored aggregate. (accumulate() is unusable here — the rebuilt
	// chain is header-only and carries no receipts.)
	acc := &Accumulator{tl: tl, weth: parts[0].WETH, minerSet: make(map[types.Address]bool), fb: fb}
	for _, p := range parts {
		agg := monthAgg{blocks: len(p.Headers), gasSum: p.GasSum, gas: p.Gas}
		agg.miners = make([]types.Address, len(p.Headers))
		for i := range p.Headers {
			agg.miners[i] = p.Headers[i].Miner
			acc.minerSet[p.Headers[i].Miner] = true
		}
		acc.months[p.Month] = agg
	}

	// Replay inference verdicts. The range has an inferrer exactly when
	// its last month was analyzed under an open observation window (the
	// window, once open, never closes before the head). Months sealed
	// before the window opened contribute synthesized out-of-window
	// verdicts — the zero Verdict, which is what classifying them live
	// would produce.
	var inf *privinfer.Inferrer
	if parts[len(parts)-1].HasVerdicts {
		sandV := make([]privinfer.Verdict, 0, nSand)
		arbV := make([]privinfer.Verdict, 0, nArb)
		liqV := make([]privinfer.Verdict, 0, nLiq)
		for _, p := range parts {
			if p.HasVerdicts {
				if len(p.SandwichVerdicts) != len(p.Sandwiches) ||
					len(p.ArbitrageVerdicts) != len(p.Arbitrages) ||
					len(p.LiquidationVerdicts) != len(p.Liquidations) {
					return nil, fmt.Errorf("measure: month %d verdicts misaligned with detections", p.Month)
				}
				sandV = append(sandV, p.SandwichVerdicts...)
				arbV = append(arbV, p.ArbitrageVerdicts...)
				liqV = append(liqV, p.LiquidationVerdicts...)
			} else {
				sandV = sandV[:len(sandV)+len(p.Sandwiches)]
				arbV = arbV[:len(arbV)+len(p.Arbitrages)]
				liqV = liqV[:len(liqV)+len(p.Liquidations)]
			}
		}
		var err error
		inf, err = privinfer.FromVerdicts(c, res, sandV, arbV, liqV)
		if err != nil {
			return nil, err
		}
		inf.FBSet = fbset
		inf.Workers = workers
		inf.Span = sp
	}

	in := Inputs{
		Chain:    c,
		FBBlocks: fb,
		FBSet:    fbset,
		Detect:   res,
		Profits:  profits,
		View:     view,
		WETH:     parts[0].WETH,
		Workers:  workers,
		Span:     sp,
	}
	vs := mergeVantageSensitivity(parts, view)

	// The vantage-sensitivity artifact is the one builder that cannot
	// re-run over a merged dataset (it classifies against the raw
	// observation logs, which partials do not retain); its merged value
	// is assembled from the frozen per-month analyses instead. Every
	// other builder runs through the normal fan-out.
	specs := make([]builderSpec, 0, len(builderSpecs))
	for _, spec := range builderSpecs {
		if spec.needsInf && inf == nil {
			continue
		}
		if spec.name == "vantages" {
			spec.run = func(_ Inputs, _ *Accumulator, _ *privinfer.Inferrer, r *Report) {
				r.VantageSensitivity = vs
			}
		}
		specs = append(specs, spec)
	}
	return runBuilders(in, acc, inf, specs), nil
}

// mergeVantageSensitivity assembles the range's vantage-sensitivity
// artifact from the per-month analyses. Observation coverage (Observed,
// PerMonth) is a prefix property — each month's restore sees every log
// up to its end — so the last partial with vantages carries the whole
// range's coverage; the window-sandwich private counts are per-month and
// sum across partials.
func mergeVantageSensitivity(parts []*Partial, view string) VantageSensitivity {
	var last *VantageSensitivity
	for i := range parts {
		if len(parts[i].Vantages.Vantages) > 0 {
			last = &parts[i].Vantages
		}
	}
	if last == nil {
		return VantageSensitivity{View: view}
	}
	// Partials carry PerMonth under the global anchoring; re-clamp to
	// the assembled range's first month, the way the range's own
	// timeline would have mapped observations recorded before it.
	from := parts[0].Month
	clampMonths := func(pm map[types.Month]int) map[types.Month]int {
		out := make(map[types.Month]int, len(pm))
		for m, n := range pm {
			if m < from {
				m = from
			}
			out[m] += n
		}
		return out
	}
	out := VantageSensitivity{View: view}
	out.Vantages = make([]VantageStat, len(last.Vantages))
	copy(out.Vantages, last.Vantages)
	for i := range out.Vantages {
		out.Vantages[i].PrivateSandwiches = 0
		out.Vantages[i].PerMonth = clampMonths(out.Vantages[i].PerMonth)
	}
	out.Union = last.Union
	out.Union.PrivateSandwiches = 0
	out.Union.PerMonth = clampMonths(out.Union.PerMonth)
	for _, p := range parts {
		for i := range p.Vantages.Vantages {
			if i < len(out.Vantages) {
				out.Vantages[i].PrivateSandwiches += p.Vantages.Vantages[i].PrivateSandwiches
			}
		}
		out.Union.PrivateSandwiches += p.Vantages.Union.PrivateSandwiches
	}
	return out
}
