package measure

// The structured artifact model: every table and figure of the report is
// exposed as a self-describing Artifact — a name, a typed column schema,
// typed rows and scalar summary stats — behind one shape. Every consumer
// (the text renderer, the CSV exporter, the JSON encoder, the HTTP query
// layer in internal/query) walks the same model, so the formats cannot
// drift from each other: they are different encodings of one value.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mevscope/internal/stats"
	"mevscope/internal/types"
)

// ValueKind types one artifact column (and cell).
type ValueKind int

// Column kinds. Month cells render as the paper's axis labels ("2/2021")
// in every encoding.
const (
	KindString ValueKind = iota
	KindInt
	KindFloat
	KindMonth
)

// String names the kind for schemas and JSON.
func (k ValueKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindMonth:
		return "month"
	default:
		return "string"
	}
}

// MarshalJSON encodes the kind by name.
func (k ValueKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Column is one column of an artifact's schema.
type Column struct {
	Name string    `json:"name"`
	Kind ValueKind `json:"kind"`
}

// Value is one typed cell. The zero value is the empty string cell.
// Ensemble-merged artifacts annotate float cells with the standard
// deviation across runs (HasStd); Float then carries the mean.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
	Month types.Month

	// Std is the cross-run standard deviation of an ensemble-annotated
	// cell; HasStd marks the annotation.
	Std    float64
	HasStd bool
}

// Cell constructors.
func str(s string) Value         { return Value{Kind: KindString, Str: s} }
func cint(n int) Value           { return Value{Kind: KindInt, Int: int64(n)} }
func cfloat(x float64) Value     { return Value{Kind: KindFloat, Float: x} }
func cmonth(m types.Month) Value { return Value{Kind: KindMonth, Month: m} }
func MeanStd(mean, sd float64) Value {
	return Value{Kind: KindFloat, Float: mean, Std: sd, HasStd: true}
}

// Str builds a string cell.
func Str(s string) Value { return str(s) }

// Int builds an integer cell.
func Int(n int) Value { return cint(n) }

// Float builds a float cell.
func Float(x float64) Value { return cfloat(x) }

// MonthCell builds a month cell.
func MonthCell(m types.Month) Value { return cmonth(m) }

// Text renders the cell the way the CSV exporters always have: integers
// verbatim, floats with six decimals, months as axis labels.
func (v Value) Text() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'f', 6, 64)
	case KindMonth:
		return v.Month.String()
	default:
		return v.Str
	}
}

// MarshalJSON encodes the cell as its native JSON type; annotated cells
// become {"mean": …, "std": …} objects.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.HasStd {
		return json.Marshal(struct {
			Mean float64 `json:"mean"`
			Std  float64 `json:"std"`
		}{v.Float, v.Std})
	}
	switch v.Kind {
	case KindInt:
		return json.Marshal(v.Int)
	case KindFloat:
		return json.Marshal(v.Float)
	case KindMonth:
		return json.Marshal(v.Month.String())
	default:
		return json.Marshal(v.Str)
	}
}

// Scalar is one named summary statistic of an artifact.
type Scalar struct {
	Name  string `json:"name"`
	Value Value  `json:"value"`
}

// Artifact is one self-describing table or figure of the report.
type Artifact struct {
	// Name is the stable identifier ("fig3", "table1", …) used for CSV
	// file names and HTTP routes.
	Name string `json:"name"`
	// Title is the section heading of the text report.
	Title string `json:"title"`
	// Columns is the row schema; empty for scalar-only artifacts.
	Columns []Column `json:"columns,omitempty"`
	// Rows holds one Value per column, in column order.
	Rows [][]Value `json:"rows"`
	// Scalars are the artifact's summary statistics.
	Scalars []Scalar `json:"-"`
}

// Column returns the index of the named column, -1 when absent.
func (a Artifact) Column(name string) int {
	for i, c := range a.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Scalar returns the named summary statistic, the zero Value when absent.
func (a Artifact) Scalar(name string) Value {
	for _, s := range a.Scalars {
		if s.Name == name {
			return s.Value
		}
	}
	return Value{}
}

// WriteCSV encodes the artifact as CSV: the column names as header, one
// record per row. Scalar-only artifacts encode as metric,value pairs.
func (a Artifact) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(a.Columns) == 0 && len(a.Scalars) > 0 {
		if err := cw.Write([]string{"metric", "value"}); err != nil {
			return err
		}
		for _, s := range a.Scalars {
			if err := cw.Write([]string{s.Name, s.Value.Text()}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	header := make([]string, len(a.Columns))
	for i, c := range a.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(a.Columns))
	for _, row := range a.Rows {
		for i := range record {
			record[i] = row[i].Text()
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// artifactJSON is the wire shape of an artifact.
type artifactJSON struct {
	Name    string           `json:"name"`
	Title   string           `json:"title"`
	Columns []Column         `json:"columns,omitempty"`
	Rows    [][]Value        `json:"rows"`
	Scalars map[string]Value `json:"scalars,omitempty"`
}

// wire converts to the JSON shape (scalars as an object; json.Marshal
// sorts the keys, so the encoding is deterministic).
func (a Artifact) wire() artifactJSON {
	out := artifactJSON{Name: a.Name, Title: a.Title, Columns: a.Columns, Rows: a.Rows}
	if out.Rows == nil {
		out.Rows = [][]Value{}
	}
	if len(a.Scalars) > 0 {
		out.Scalars = make(map[string]Value, len(a.Scalars))
		for _, s := range a.Scalars {
			out.Scalars[s.Name] = s.Value
		}
	}
	return out
}

// MarshalJSON encodes the full artifact.
func (a Artifact) MarshalJSON() ([]byte, error) { return json.Marshal(a.wire()) }

// WriteJSON encodes the artifact as indented JSON.
func (a Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ---------------------------------------------------------------------------
// Report → artifacts

// artifactNames is the single source of the artifact set and its paper
// order; Artifacts, Artifact and ArtifactNames all derive from it.
var artifactNames = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"mevsplit", "bundles", "negatives", "damage", "concentration",
	"private_links", "vantage_sensitivity",
}

// Artifacts returns every table and figure of the report as a structured
// artifact, in paper order. Artifacts that need an observation window
// (fig9, mevsplit, private_links) are present with zero rows when the run
// had none, so the artifact list — and the CSV file set — is stable
// across runs.
func (r *Report) Artifacts() []Artifact {
	out := make([]Artifact, 0, len(artifactNames))
	for _, name := range artifactNames {
		a, _ := r.Artifact(name)
		out = append(out, a)
	}
	return out
}

// Artifact builds one artifact by name — the others are not constructed.
func (r *Report) Artifact(name string) (Artifact, bool) {
	switch name {
	case "table1":
		return r.table1Artifact(), true
	case "fig3":
		return r.fig3Artifact(), true
	case "fig4":
		return r.fig4Artifact(), true
	case "fig5":
		return r.fig5Artifact(), true
	case "fig6":
		return r.fig6Artifact(), true
	case "fig7":
		return r.fig7Artifact(), true
	case "fig8":
		return r.fig8Artifact(), true
	case "fig9":
		return r.fig9Artifact(), true
	case "mevsplit":
		return r.mevSplitArtifact(), true
	case "bundles":
		return r.bundlesArtifact(), true
	case "negatives":
		return r.negativesArtifact(), true
	case "damage":
		return r.damageArtifact(), true
	case "concentration":
		return r.concentrationArtifact(), true
	case "private_links":
		return r.privateLinksArtifact(), true
	case "vantage_sensitivity":
		return r.vantageSensitivityArtifact(), true
	}
	return Artifact{}, false
}

// ArtifactNames lists the report's artifact names in paper order.
func ArtifactNames() []string { return append([]string(nil), artifactNames...) }

func (r *Report) table1Artifact() Artifact {
	a := Artifact{
		Name:  "table1",
		Title: "Table 1: MEV dataset overview",
		Columns: []Column{
			{"strategy", KindString}, {"extractions", KindInt},
			{"via_flashbots", KindInt}, {"via_flash_loans", KindInt}, {"via_both", KindInt},
		},
	}
	emit := func(row Table1Row) {
		a.Rows = append(a.Rows, []Value{
			str(row.Strategy), cint(row.Extractions), cint(row.ViaFlashbots),
			cint(row.ViaFlashLoans), cint(row.ViaBoth),
		})
	}
	for _, row := range r.Table1.Rows {
		emit(row)
	}
	emit(r.Table1.Total)
	return a
}

func (r *Report) fig3Artifact() Artifact {
	a := Artifact{
		Name:  "fig3",
		Title: "Figure 3: Flashbots block ratio per month",
		Columns: []Column{
			{"month", KindMonth}, {"flashbots_blocks", KindInt},
			{"total_blocks", KindInt}, {"ratio", KindFloat},
		},
	}
	for _, row := range r.Fig3 {
		a.Rows = append(a.Rows, []Value{
			cmonth(row.Month), cint(row.FlashbotsBlocks), cint(row.TotalBlocks), cfloat(row.Ratio()),
		})
	}
	return a
}

func (r *Report) fig4Artifact() Artifact {
	a := Artifact{
		Name:    "fig4",
		Title:   "Figure 4: estimated Flashbots hashrate per month",
		Columns: []Column{{"month", KindMonth}, {"flashbots_hashrate", KindFloat}},
	}
	for _, mv := range r.Fig4 {
		a.Rows = append(a.Rows, []Value{cmonth(mv.Month), cfloat(mv.Value)})
	}
	return a
}

func (r *Report) fig5Artifact() Artifact {
	a := Artifact{
		Name:    "fig5",
		Title:   "Figure 5: miners with ≥ n Flashbots blocks",
		Columns: []Column{{"month", KindMonth}},
	}
	for _, th := range r.Fig5.Thresholds {
		a.Columns = append(a.Columns, Column{fmt.Sprintf("ge_%d", th), KindInt})
	}
	for i, m := range r.Fig5.Months {
		row := []Value{cmonth(m)}
		for _, c := range r.Fig5.Counts[i] {
			row = append(row, cint(c))
		}
		a.Rows = append(a.Rows, row)
	}
	a.Scalars = []Scalar{{"max_miners_in_any_month", cint(r.Fig5.MaxMinersInAnyMonth())}}
	return a
}

// fig5Thresholds recovers the threshold list from a fig5 artifact's
// column names — the schema itself carries them (ge_<n>).
func fig5Thresholds(a Artifact) []int {
	var out []int
	for _, c := range a.Columns[1:] {
		n, err := strconv.Atoi(strings.TrimPrefix(c.Name, "ge_"))
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	return out
}

func (r *Report) fig6Artifact() Artifact {
	a := Artifact{
		Name:  "fig6",
		Title: "Figure 6: sandwiches per month vs gas price",
		Columns: []Column{
			{"month", KindMonth}, {"flashbots_sandwiches", KindInt},
			{"non_flashbots_sandwiches", KindInt}, {"avg_gas_gwei", KindFloat},
			{"median_gas_gwei", KindFloat},
		},
		Scalars: []Scalar{
			{"corr_non_fb", cfloat(r.Fig6.CorrNonFB)},
			{"corr_all", cfloat(r.Fig6.CorrAll)},
		},
	}
	for _, row := range r.Fig6.Rows {
		a.Rows = append(a.Rows, []Value{
			cmonth(row.Month), cint(row.FlashbotsSand), cint(row.NonFlashbotsSand),
			cfloat(row.AvgGasPriceGwei), cfloat(row.MedianGasPriceGwei),
		})
	}
	return a
}

// fig7Keys is the fixed MEV-type column order of Figure 7.
var fig7Keys = []string{"sandwiches", "arbitrages", "liquidations", "other"}

func (r *Report) fig7Artifact() Artifact {
	a := Artifact{
		Name:    "fig7",
		Title:   "Figure 7: Flashbots searchers / transactions by MEV type per month",
		Columns: []Column{{"month", KindMonth}},
	}
	for _, k := range fig7Keys {
		a.Columns = append(a.Columns, Column{k + "_searchers", KindInt}, Column{k + "_txs", KindInt})
	}
	for _, row := range r.Fig7.Rows {
		out := []Value{cmonth(row.Month)}
		for _, k := range fig7Keys {
			out = append(out, cint(row.Searchers[k]), cint(row.Txs[k]))
		}
		a.Rows = append(a.Rows, out)
	}
	return a
}

func (r *Report) fig8Artifact() Artifact {
	a := Artifact{
		Name:  "fig8",
		Title: "Figure 8: sandwich profit (net ETH) by subpopulation",
		Columns: []Column{
			{"subpopulation", KindString}, {"n", KindInt}, {"mean_eth", KindFloat},
			{"median_eth", KindFloat}, {"std_eth", KindFloat}, {"min_eth", KindFloat},
			{"max_eth", KindFloat},
		},
	}
	emit := func(name string, s stats.Summary) {
		a.Rows = append(a.Rows, []Value{
			str(name), cint(s.N), cfloat(s.Mean), cfloat(s.Median),
			cfloat(s.Std), cfloat(s.Min), cfloat(s.Max),
		})
	}
	emit("miner_non_flashbots", r.Fig8.MinerNonFB)
	emit("miner_flashbots", r.Fig8.MinerFB)
	emit("searcher_non_flashbots", r.Fig8.SearcherNonFB)
	emit("searcher_flashbots", r.Fig8.SearcherFB)
	return a
}

func (r *Report) fig9Artifact() Artifact {
	a := Artifact{
		Name:    "fig9",
		Title:   "Figure 9: private vs public MEV extraction (window sandwiches)",
		Columns: []Column{{"channel", KindString}, {"sandwiches", KindInt}, {"share", KindFloat}},
	}
	total := 0
	if r.Fig9 != nil {
		sp := r.Fig9.Split
		total = sp.Total
		a.Rows = append(a.Rows,
			[]Value{str("flashbots"), cint(sp.Flashbots), cfloat(sp.FlashbotsShare())},
			[]Value{str("private_non_flashbots"), cint(sp.Private), cfloat(sp.PrivateShare())},
			[]Value{str("public"), cint(sp.Public), cfloat(sp.PublicShare())},
		)
	}
	a.Scalars = []Scalar{{"total", cint(total)}}
	return a
}

func (r *Report) mevSplitArtifact() Artifact {
	a := Artifact{
		Name:  "mevsplit",
		Title: "§6.2: private vs public extraction by MEV type",
		Columns: []Column{
			{"kind", KindString}, {"total", KindInt}, {"flashbots_share", KindFloat},
			{"private_share", KindFloat}, {"public_share", KindFloat},
		},
	}
	if r.MEVSplit == nil {
		return a
	}
	for _, kind := range []string{"arbitrage", "liquidation"} {
		ks := r.MEVSplit.ByKind[kind]
		if ks == nil || ks.Total == 0 {
			continue
		}
		a.Rows = append(a.Rows, []Value{
			str(kind), cint(ks.Total), cfloat(ks.FlashbotsShare()),
			cfloat(ks.PrivateShare()), cfloat(ks.PublicShare()),
		})
	}
	return a
}

func (r *Report) bundlesArtifact() Artifact {
	b := r.Bundles
	a := Artifact{
		Name:    "bundles",
		Title:   "§4.1 bundle statistics",
		Columns: []Column{{"bundle_type", KindString}, {"count", KindInt}},
		Scalars: []Scalar{
			{"bundles", cint(b.Bundles)},
			{"flashbots_blocks", cint(b.FlashbotsBlocks)},
			{"bundles_per_block_mean", cfloat(b.BundlesPerBlock.Mean)},
			{"bundles_per_block_median", cfloat(b.BundlesPerBlock.Median)},
			{"bundles_per_block_max", cfloat(b.BundlesPerBlock.Max)},
			{"txs_per_bundle_mean", cfloat(b.TxsPerBundle.Mean)},
			{"txs_per_bundle_median", cfloat(b.TxsPerBundle.Median)},
			{"max_bundle_txs", cint(b.MaxBundleTxs)},
			{"single_tx_share", cfloat(b.SingleTxShare())},
		},
	}
	names := make([]string, 0, len(b.ByType))
	for t := range b.ByType {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		a.Rows = append(a.Rows, []Value{str(t), cint(b.ByType[t])})
	}
	return a
}

func (r *Report) negativesArtifact() Artifact {
	n := r.Negatives
	return Artifact{
		Name:  "negatives",
		Title: "§5.2 negative profits",
		Scalars: []Scalar{
			{"flashbots_sandwiches", cint(n.FlashbotsSandwiches)},
			{"unprofitable", cint(n.Unprofitable)},
			{"share", cfloat(n.Share())},
			{"total_loss_eth", cfloat(n.TotalLossETH)},
		},
	}
}

func (r *Report) damageArtifact() Artifact {
	dm := r.Damage
	return Artifact{
		Name:  "damage",
		Title: "extension: victim damage (sandwich slippage extracted)",
		Scalars: []Scalar{
			{"victims", cint(dm.Victims)},
			{"total_eth", cfloat(dm.TotalETH)},
			{"mean_eth", cfloat(dm.Summary.Mean)},
			{"median_eth", cfloat(dm.Summary.Median)},
		},
	}
}

func (r *Report) concentrationArtifact() Artifact {
	return Artifact{
		Name:  "concentration",
		Title: "§4.4 mining concentration",
		Scalars: []Scalar{
			{"miners", cint(r.Concentration.Miners)},
			{"top2_share", cfloat(r.Concentration.Top2Share)},
		},
	}
}

func (r *Report) vantageSensitivityArtifact() Artifact {
	vs := r.VantageSensitivity
	a := Artifact{
		Name:  "vantage_sensitivity",
		Title: "extension: vantage sensitivity (observation coverage and §6 private counts per vantage)",
		Columns: []Column{
			{"month", KindMonth}, {"vantage", KindInt}, {"node", KindInt},
			{"observed", KindInt}, {"union_observed", KindInt}, {"coverage", KindFloat},
		},
	}
	for _, m := range vs.Months() {
		unionN := vs.Union.PerMonth[m]
		for _, v := range vs.Vantages {
			coverage := 0.0
			if unionN > 0 {
				coverage = float64(v.PerMonth[m]) / float64(unionN)
			}
			a.Rows = append(a.Rows, []Value{
				cmonth(m), cint(v.Vantage), cint(v.Node),
				cint(v.PerMonth[m]), cint(unionN), cfloat(coverage),
			})
		}
	}
	a.Scalars = []Scalar{
		{"vantages", cint(len(vs.Vantages))},
		{"view", str(vs.View)},
		{"union_observed", cint(vs.Union.Observed)},
		{"union_private_sandwiches", cint(vs.Union.PrivateSandwiches)},
	}
	for _, v := range vs.Vantages {
		prefix := fmt.Sprintf("vantage%d", v.Vantage)
		a.Scalars = append(a.Scalars,
			Scalar{prefix + "_observed", cint(v.Observed)},
			Scalar{prefix + "_private_sandwiches", cint(v.PrivateSandwiches)},
			// A single vantage misses public traffic the union catches, and
			// every miss inflates its private count: the delta is the §6
			// overcount attributable to that vantage's blind spots.
			Scalar{prefix + "_private_delta_vs_union", cint(v.PrivateSandwiches - vs.Union.PrivateSandwiches)},
		)
	}
	return a
}

func (r *Report) privateLinksArtifact() Artifact {
	a := Artifact{
		Name:  "private_links",
		Title: "§6.3 private non-Flashbots sandwich accounts",
		Columns: []Column{
			{"account", KindString}, {"total", KindInt},
			{"miners", KindInt}, {"single_miner", KindString},
		},
	}
	for _, l := range r.PrivateLinks {
		single := ""
		if m, ok := l.SingleMiner(); ok {
			single = m.String()
		}
		a.Rows = append(a.Rows, []Value{
			str(l.Account.String()), cint(l.Total), cint(len(l.Miners)), str(single),
		})
	}
	return a
}
