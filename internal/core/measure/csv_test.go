package measure

import (
	"bytes"
	"encoding/csv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mevscope/internal/core/privinfer"
	"mevscope/internal/stats"
	"mevscope/internal/types"
)

func sampleReport() *Report {
	return &Report{
		Table1: Table1{
			Rows: []Table1Row{
				{Strategy: "Sandwiching", Extractions: 10, ViaFlashbots: 5},
				{Strategy: "Arbitrage", Extractions: 30, ViaFlashbots: 9, ViaFlashLoans: 1},
				{Strategy: "Liquidation", Extractions: 2},
			},
			Total: Table1Row{Strategy: "Total", Extractions: 42, ViaFlashbots: 14, ViaFlashLoans: 1},
		},
		Fig3: []Fig3Row{{Month: 9, FlashbotsBlocks: 3, TotalBlocks: 10}},
		Fig4: []MonthValue{{Month: 9, Value: 0.5}},
		Fig5: Fig5{Thresholds: []int{1, 2}, Months: []types.Month{9}, Counts: [][]int{{4, 2}}},
		Fig6: Fig6{Rows: []Fig6Row{{Month: 9, FlashbotsSand: 1, NonFlashbotsSand: 2, AvgGasPriceGwei: 50}}},
		Fig7: Fig7{Rows: []Fig7Row{{Month: 9, Searchers: map[string]int{"other": 3}, Txs: map[string]int{"other": 7}}}},
		Fig8: Fig8{MinerFB: stats.Summarize([]float64{0.1, 0.2})},
		Fig9: &Fig9{Split: privinfer.SandwichSplit{Total: 10, Flashbots: 8, Private: 1, Public: 1}},
		Bundles: BundleStats{ByType: map[string]int{
			"flashbots": 9, "rogue": 1, "miner-payout": 1,
		}},
	}
}

func TestCSVExportersShapes(t *testing.T) {
	r := sampleReport()
	cases := []struct {
		name   string
		fn     func(*Report) (string, error)
		header string
		lines  int
	}{
		{"table1", render((*Report).Table1CSV), "strategy,", 5},
		{"fig3", render((*Report).Fig3CSV), "month,flashbots_blocks", 2},
		{"fig4", render((*Report).Fig4CSV), "month,flashbots_hashrate", 2},
		{"fig5", render((*Report).Fig5CSV), "month,ge_1,ge_2", 2},
		{"fig6", render((*Report).Fig6CSV), "month,flashbots_sandwiches", 2},
		{"fig7", render((*Report).Fig7CSV), "month,sandwiches_searchers", 2},
		{"fig8", render((*Report).Fig8CSV), "subpopulation,", 5},
		{"fig9", render((*Report).Fig9CSV), "channel,sandwiches,share", 4},
		{"bundles", render((*Report).BundlesCSV), "bundle_type,count", 4},
	}
	for _, c := range cases {
		out, err := c.fn(r)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.HasPrefix(out, c.header) {
			t.Errorf("%s header = %q", c.name, strings.SplitN(out, "\n", 2)[0])
		}
		if got := strings.Count(strings.TrimSpace(out), "\n") + 1; got != c.lines {
			t.Errorf("%s lines = %d want %d", c.name, got, c.lines)
		}
	}
}

func render(fn func(*Report, io.Writer) error) func(*Report) (string, error) {
	return func(r *Report) (string, error) {
		var buf bytes.Buffer
		if err := fn(r, &buf); err != nil {
			return "", err
		}
		return buf.String(), nil
	}
}

func TestFig9CSVWithoutWindow(t *testing.T) {
	r := sampleReport()
	r.Fig9 = nil
	var buf bytes.Buffer
	if err := r.Fig9CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "channel,sandwiches,share" {
		t.Errorf("header-only expected, got %q", got)
	}
}

// TestWriteCSVDirRoundTrip parses every emitted CSV back and asserts the
// rows match the structured artifact model cell for cell — the guard
// around the generic encoder: a column added to (or dropped from) an
// artifact without its schema shows up here, as does any formatting
// drift.
func TestWriteCSVDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := sampleReport()
	if err := r.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range ArtifactNames() {
		a, ok := r.Artifact(name)
		if !ok {
			t.Fatalf("no artifact %q behind %s.csv", name, name)
		}
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		records, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s.csv: %v", name, err)
		}
		if len(records) == 0 {
			t.Fatalf("%s.csv is empty", name)
		}
		header, rows := records[0], records[1:]
		if len(a.Columns) == 0 {
			// Scalar-only artifacts encode as metric,value pairs.
			if header[0] != "metric" || header[1] != "value" {
				t.Fatalf("%s.csv header = %v", name, header)
			}
			if len(rows) != len(a.Scalars) {
				t.Fatalf("%s.csv has %d rows, model has %d scalars", name, len(rows), len(a.Scalars))
			}
			for ri, rec := range rows {
				if rec[0] != a.Scalars[ri].Name || rec[1] != a.Scalars[ri].Value.Text() {
					t.Errorf("%s.csv row %d = %v, model scalar %s=%s",
						name, ri, rec, a.Scalars[ri].Name, a.Scalars[ri].Value.Text())
				}
			}
			continue
		}
		if len(header) != len(a.Columns) {
			t.Fatalf("%s.csv has %d columns, model %d", name, len(header), len(a.Columns))
		}
		for i, col := range a.Columns {
			if header[i] != col.Name {
				t.Errorf("%s.csv column %d = %q, model %q", name, i, header[i], col.Name)
			}
		}
		if len(rows) != len(a.Rows) {
			t.Fatalf("%s.csv has %d rows, model %d", name, len(rows), len(a.Rows))
		}
		for ri, rec := range rows {
			for ci, cell := range rec {
				if want := a.Rows[ri][ci].Text(); cell != want {
					t.Errorf("%s.csv row %d col %s = %q, model %q", name, ri, a.Columns[ci].Name, cell, want)
				}
			}
		}
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := t.TempDir()
	r := sampleReport()
	if err := r.WriteCSVDir(filepath.Join(dir, "csv")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ArtifactNames()) {
		t.Errorf("files = %d, want one per artifact (%d)", len(entries), len(ArtifactNames()))
	}
	b, err := os.ReadFile(filepath.Join(dir, "csv", "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Sandwiching") {
		t.Error("table1.csv content")
	}
}
