package measure

// Vantage sensitivity: the observation-network robustness analysis. The
// paper's §6 private/public split hinges on what a single mempool
// vantage saw; with N vantages recording independently, the same world
// can be classified from each vantage alone and from their union, which
// bounds how much of the "private" mass is really just blind spots of
// one collector. Rows cover observation coverage month by month and
// vantage by vantage; scalars carry the per-vantage private counts and
// the union-vs-single deltas.

import (
	"mevscope/internal/core/privinfer"
	"mevscope/internal/p2p"
	"mevscope/internal/types"
)

// VantageStat summarizes one observation view's take on the world.
type VantageStat struct {
	// Vantage is the index in the network's vantage list; -1 marks the
	// union view.
	Vantage int
	// Node is the graph position the vantage listens at (0 for union).
	Node int
	// Observed is the number of distinct pending transactions recorded.
	Observed int
	// PrivateSandwiches counts window sandwiches the §6.1 rule classifies
	// private (non-Flashbots) against this view alone.
	PrivateSandwiches int
	// PerMonth maps study months to the view's distinct observation
	// counts.
	PerMonth map[types.Month]int
}

// VantageSensitivity is the full analysis: one row per real vantage plus
// the union view.
type VantageSensitivity struct {
	// View is the observation view the main report classified against.
	View string
	// Vantages holds per-vantage stats in configuration order.
	Vantages []VantageStat
	// Union is the k=1 composite over every vantage.
	Union VantageStat
}

// Months returns the ascending study months covered by any view.
func (v VantageSensitivity) Months() []types.Month {
	var out []types.Month
	for m := types.Month(0); m < types.StudyMonths; m++ {
		if v.Union.PerMonth[m] > 0 {
			out = append(out, m)
			continue
		}
		for _, vs := range v.Vantages {
			if vs.PerMonth[m] > 0 {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// BuildVantageSensitivity classifies the window sandwiches against every
// vantage alone and against the union view. Zero-valued without
// vantages (runs whose observation window never opened).
func BuildVantageSensitivity(in Inputs) VantageSensitivity {
	out := VantageSensitivity{View: in.View}
	if len(in.Vantages) == 0 || in.Chain == nil || in.Chain.Head() == nil || in.Detect == nil {
		return out
	}
	head := in.Chain.Head().Header.Number
	winStart := in.Chain.Timeline.FirstBlockOfMonth(types.PrivateWindowStartMonth)
	stat := func(index, node int, view privinfer.Observer, perMonth map[types.Month]int, observed int) VantageStat {
		inf := privinfer.New(in.Chain, view, in.FBSet, winStart, head)
		private := 0
		for _, s := range in.Detect.Sandwiches {
			if ch, ok := inf.ClassifySandwich(s); ok && ch == privinfer.ChannelPrivate {
				private++
			}
		}
		return VantageStat{
			Vantage: index, Node: node,
			Observed: observed, PrivateSandwiches: private, PerMonth: perMonth,
		}
	}
	tl := in.Chain.Timeline
	for i, v := range in.Vantages {
		perMonth := map[types.Month]int{}
		for _, rec := range v.Records() {
			perMonth[tl.MonthOfBlock(rec.FirstSeenBlock)]++
		}
		out.Vantages = append(out.Vantages, stat(i, v.Node(), v, perMonth, v.Count()))
	}
	if len(in.Vantages) == 1 {
		// A one-vantage union is the vantage itself: skip the merge and
		// the third classification sweep on the default single-observer
		// path.
		out.Union = out.Vantages[0]
		out.Union.Vantage, out.Union.Node = -1, 0
		return out
	}
	union := p2p.Union(in.Vantages...)
	// The union's monthly counts attribute each distinct transaction to
	// its earliest first-seen block across vantages (Materialize's merge
	// rule), so a tx two vantages saw in different months counts once.
	merged := union.Materialize()
	unionPerMonth := map[types.Month]int{}
	for _, rec := range merged.Records() {
		unionPerMonth[tl.MonthOfBlock(rec.FirstSeenBlock)]++
	}
	out.Union = stat(-1, 0, union, unionPerMonth, merged.Count())
	return out
}
