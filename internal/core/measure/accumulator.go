package measure

import (
	"sort"

	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/flashbots"
	"mevscope/internal/obs"
	"mevscope/internal/parallel"
	"mevscope/internal/stats"
	"mevscope/internal/types"
)

// monthAgg is the chain-derived state of one study month: everything the
// report builders need from the raw blocks, accumulated in block order so
// floating-point reductions reproduce the batch pass exactly.
type monthAgg struct {
	// blocks is the number of blocks minted in the month.
	blocks int
	// miners holds the coinbase of each block, in height order (Figure 4
	// needs per-block membership checks against the month's Flashbots
	// miner set, which is only complete once the month ends).
	miners []types.Address
	// gasSum and gas accumulate every receipt's effective gas price in
	// gwei, in receipt order — the Figure 6 sweep.
	gasSum float64
	gas    []float64
}

// feed folds one block into the aggregate.
func (agg *monthAgg) feed(b *types.Block) {
	agg.blocks++
	agg.miners = append(agg.miners, b.Header.Miner)
	for _, rcpt := range b.Receipts {
		g := float64(rcpt.EffectiveGasPrice) / float64(types.Gwei)
		agg.gasSum += g
		agg.gas = append(agg.gas, g)
	}
}

// Accumulator maintains the chain-derived aggregates of the report
// incrementally: the streaming block-follower feeds it one block at a
// time and can snapshot a full Report at any height, while the batch
// Build constructs the same aggregates in one parallel pass over the
// finished chain. Both paths flow through the same builder code, so a
// snapshot after feeding blocks [start, n] is byte-identical to a batch
// Build over a chain truncated at n.
type Accumulator struct {
	tl       types.Timeline
	weth     types.Address
	months   [types.StudyMonths]monthAgg
	minerSet map[types.Address]bool
	fb       []flashbots.BlockRecord
}

// NewAccumulator creates an empty accumulator over the timeline.
func NewAccumulator(tl types.Timeline, weth types.Address) *Accumulator {
	return &Accumulator{tl: tl, weth: weth, minerSet: make(map[types.Address]bool)}
}

// FeedBlock folds one block into the monthly aggregates. fbRec is the
// block's Flashbots public-API record, nil when the block carried no
// bundle. Blocks must be fed in ascending height order.
func (a *Accumulator) FeedBlock(b *types.Block, fbRec *flashbots.BlockRecord) {
	m := a.tl.MonthOfBlock(b.Header.Number)
	a.months[m].feed(b)
	a.minerSet[b.Header.Miner] = true
	if fbRec != nil {
		a.fb = append(a.fb, *fbRec)
	}
}

// FBBlocks returns the Flashbots block records fed so far, in height
// order — the live public-API dataset. Callers must not mutate it.
func (a *Accumulator) FBBlocks() []flashbots.BlockRecord { return a.fb }

// Report assembles the full report from the accumulated aggregates plus
// the detector/profit/inference inputs. in.FBBlocks is overridden with
// the accumulator's own record list (they are identical in the batch
// path; in the streaming path the accumulator's list is the authority).
func (a *Accumulator) Report(in Inputs, inf *privinfer.Inferrer) *Report {
	in.FBBlocks = a.fb
	return buildWith(in, a, inf)
}

// accumulate builds the aggregates for a completed chain in one batch
// pass, fanning months across the worker pool. Each month is walked in
// block order, so per-month aggregates equal the streamed ones exactly.
// withGas skips the receipt sweep when the caller only needs block-level
// aggregates (Figures 3 and 4).
func accumulate(in Inputs, withGas bool) *Accumulator {
	sp := in.Span.Child(obs.StageAggregate)
	defer sp.End()
	sp.SetBlocks(in.Chain.Len())
	a := NewAccumulator(in.Chain.Timeline, in.WETH)
	a.fb = in.FBBlocks
	aggs := parallel.MapSpan(sp, types.StudyMonths, in.workers(), func(mi int) *monthAgg {
		blocks := in.Chain.BlocksInMonth(types.Month(mi))
		if len(blocks) == 0 {
			return nil
		}
		agg := &monthAgg{}
		for _, b := range blocks {
			if withGas {
				agg.feed(b)
			} else {
				agg.blocks++
				agg.miners = append(agg.miners, b.Header.Miner)
			}
		}
		return agg
	})
	for mi, agg := range aggs {
		if agg == nil {
			continue
		}
		a.months[mi] = *agg
		for _, m := range agg.miners {
			a.minerSet[m] = true
		}
	}
	return a
}

// figure3 computes the monthly Flashbots vs non-Flashbots block
// proportion from the aggregates.
func figure3(in Inputs, acc *Accumulator) []Fig3Row {
	fbByMonth := map[types.Month]int{}
	for _, rec := range in.FBBlocks {
		fbByMonth[in.Chain.Timeline.MonthOfBlock(rec.BlockNumber)]++
	}
	out := make([]Fig3Row, 0, types.StudyMonths)
	for m := types.Month(0); m < types.StudyMonths; m++ {
		total := acc.months[m].blocks
		if total == 0 {
			continue
		}
		out = append(out, Fig3Row{Month: m, FlashbotsBlocks: fbByMonth[m], TotalBlocks: total})
	}
	return out
}

// figure4 estimates the monthly Flashbots hashpower share from the
// aggregates (§4.3's estimator).
func figure4(in Inputs, acc *Accumulator) []MonthValue {
	fbMiners := map[types.Month]map[types.Address]bool{}
	for _, rec := range in.FBBlocks {
		m := in.Chain.Timeline.MonthOfBlock(rec.BlockNumber)
		if fbMiners[m] == nil {
			fbMiners[m] = map[types.Address]bool{}
		}
		fbMiners[m][rec.Miner] = true
	}
	var out []MonthValue
	for m := types.Month(0); m < types.StudyMonths; m++ {
		agg := &acc.months[m]
		if agg.blocks == 0 {
			continue
		}
		fb := 0
		for _, miner := range agg.miners {
			if fbMiners[m][miner] {
				fb++
			}
		}
		out = append(out, MonthValue{Month: m, Value: float64(fb) / float64(agg.blocks)})
	}
	return out
}

// figure6 computes the sandwich/gas-price series from the aggregates.
func figure6(in Inputs, acc *Accumulator) Fig6 {
	fbSand := map[types.Month]int{}
	nonFBSand := map[types.Month]int{}
	for _, r := range in.Profits {
		if r.Kind != profit.KindSandwich {
			continue
		}
		if r.ViaFlashbots {
			fbSand[r.Month]++
		} else {
			nonFBSand[r.Month]++
		}
	}
	var f Fig6
	var gasSeries, nonFBSeries, allSeries []float64
	for m := types.Month(0); m < types.StudyMonths; m++ {
		agg := &acc.months[m]
		if agg.blocks == 0 {
			continue
		}
		row := Fig6Row{Month: m, FlashbotsSand: fbSand[m], NonFlashbotsSand: nonFBSand[m]}
		if len(agg.gas) > 0 {
			all := append([]float64(nil), agg.gas...)
			sort.Float64s(all)
			row.AvgGasPriceGwei = agg.gasSum / float64(len(all))
			row.MedianGasPriceGwei = stats.Quantile(all, 0.5)
		}
		f.Rows = append(f.Rows, row)
		gasSeries = append(gasSeries, row.AvgGasPriceGwei)
		nonFBSeries = append(nonFBSeries, float64(row.NonFlashbotsSand))
		allSeries = append(allSeries, float64(row.FlashbotsSand+row.NonFlashbotsSand))
	}
	f.CorrNonFB = stats.Pearson(nonFBSeries, gasSeries)
	f.CorrAll = stats.Pearson(allSeries, gasSeries)
	return f
}
