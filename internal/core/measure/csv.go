package measure

// CSV exporters: every figure's underlying series in a plottable form, so
// downstream users can regenerate the paper's plots with any tool. The
// per-figure methods and WriteCSVDir are thin lookups into the structured
// artifact model — one generic encoder (Artifact.WriteCSV) replaces the
// hand-maintained per-figure writers, so the CSV output cannot drift from
// the JSON and text encodings of the same artifact.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// artifactCSV encodes one named artifact as CSV.
func (r *Report) artifactCSV(w io.Writer, name string) error {
	a, ok := r.Artifact(name)
	if !ok {
		return fmt.Errorf("measure: no artifact %q", name)
	}
	return a.WriteCSV(w)
}

// Fig3CSV writes the monthly block-ratio series.
func (r *Report) Fig3CSV(w io.Writer) error { return r.artifactCSV(w, "fig3") }

// Fig4CSV writes the monthly hashrate estimate.
func (r *Report) Fig4CSV(w io.Writer) error { return r.artifactCSV(w, "fig4") }

// Fig5CSV writes the miners-with-n-blocks distribution.
func (r *Report) Fig5CSV(w io.Writer) error { return r.artifactCSV(w, "fig5") }

// Fig6CSV writes the sandwich/gas-price series.
func (r *Report) Fig6CSV(w io.Writer) error { return r.artifactCSV(w, "fig6") }

// Fig7CSV writes the per-type searcher and transaction series.
func (r *Report) Fig7CSV(w io.Writer) error { return r.artifactCSV(w, "fig7") }

// Fig8CSV writes the four profit-distribution summaries.
func (r *Report) Fig8CSV(w io.Writer) error { return r.artifactCSV(w, "fig8") }

// Fig9CSV writes the private/public split; a header-only file when no
// observation window existed.
func (r *Report) Fig9CSV(w io.Writer) error { return r.artifactCSV(w, "fig9") }

// Table1CSV writes the MEV dataset overview.
func (r *Report) Table1CSV(w io.Writer) error { return r.artifactCSV(w, "table1") }

// BundlesCSV writes the §4.1 bundle-type counts.
func (r *Report) BundlesCSV(w io.Writer) error { return r.artifactCSV(w, "bundles") }

// WriteCSVDir writes every artifact of the model as <dir>/<name>.csv —
// tabular artifacts with their column schema as header, scalar-only
// artifacts as metric,value pairs.
func (r *Report) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range ArtifactNames() {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := r.artifactCSV(f, name); err != nil {
			_ = f.Close() // encode error wins; the file is junk either way
			return fmt.Errorf("measure: write %s.csv: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
