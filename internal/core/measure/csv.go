package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// CSV exporters: every figure's underlying series in a plottable form, so
// downstream users can regenerate the paper's plots with any tool. One
// file per artifact, written by WriteCSVDir.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
func d(x int) string     { return strconv.Itoa(x) }

// Fig3CSV writes the monthly block-ratio series.
func (r *Report) Fig3CSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Fig3))
	for _, row := range r.Fig3 {
		rows = append(rows, []string{row.Month.String(), d(row.FlashbotsBlocks), d(row.TotalBlocks), f(row.Ratio())})
	}
	return writeCSV(w, []string{"month", "flashbots_blocks", "total_blocks", "ratio"}, rows)
}

// Fig4CSV writes the monthly hashrate estimate.
func (r *Report) Fig4CSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Fig4))
	for _, mv := range r.Fig4 {
		rows = append(rows, []string{mv.Month.String(), f(mv.Value)})
	}
	return writeCSV(w, []string{"month", "flashbots_hashrate"}, rows)
}

// Fig5CSV writes the miners-with-n-blocks distribution.
func (r *Report) Fig5CSV(w io.Writer) error {
	header := []string{"month"}
	for _, th := range r.Fig5.Thresholds {
		header = append(header, fmt.Sprintf("ge_%d", th))
	}
	rows := make([][]string, 0, len(r.Fig5.Months))
	for i, m := range r.Fig5.Months {
		row := []string{m.String()}
		for _, c := range r.Fig5.Counts[i] {
			row = append(row, d(c))
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}

// Fig6CSV writes the sandwich/gas-price series.
func (r *Report) Fig6CSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Fig6.Rows))
	for _, row := range r.Fig6.Rows {
		rows = append(rows, []string{
			row.Month.String(), d(row.FlashbotsSand), d(row.NonFlashbotsSand),
			f(row.AvgGasPriceGwei), f(row.MedianGasPriceGwei),
		})
	}
	return writeCSV(w, []string{"month", "flashbots_sandwiches", "non_flashbots_sandwiches", "avg_gas_gwei", "median_gas_gwei"}, rows)
}

// Fig7CSV writes the per-type searcher and transaction series.
func (r *Report) Fig7CSV(w io.Writer) error {
	keys := []string{"sandwiches", "arbitrages", "liquidations", "other"}
	header := []string{"month"}
	for _, k := range keys {
		header = append(header, k+"_searchers", k+"_txs")
	}
	rows := make([][]string, 0, len(r.Fig7.Rows))
	for _, row := range r.Fig7.Rows {
		out := []string{row.Month.String()}
		for _, k := range keys {
			out = append(out, d(row.Searchers[k]), d(row.Txs[k]))
		}
		rows = append(rows, out)
	}
	return writeCSV(w, header, rows)
}

// Fig8CSV writes the four profit-distribution summaries.
func (r *Report) Fig8CSV(w io.Writer) error {
	rows := [][]string{
		{"miner_non_flashbots", d(r.Fig8.MinerNonFB.N), f(r.Fig8.MinerNonFB.Mean), f(r.Fig8.MinerNonFB.Median), f(r.Fig8.MinerNonFB.Std), f(r.Fig8.MinerNonFB.Min), f(r.Fig8.MinerNonFB.Max)},
		{"miner_flashbots", d(r.Fig8.MinerFB.N), f(r.Fig8.MinerFB.Mean), f(r.Fig8.MinerFB.Median), f(r.Fig8.MinerFB.Std), f(r.Fig8.MinerFB.Min), f(r.Fig8.MinerFB.Max)},
		{"searcher_non_flashbots", d(r.Fig8.SearcherNonFB.N), f(r.Fig8.SearcherNonFB.Mean), f(r.Fig8.SearcherNonFB.Median), f(r.Fig8.SearcherNonFB.Std), f(r.Fig8.SearcherNonFB.Min), f(r.Fig8.SearcherNonFB.Max)},
		{"searcher_flashbots", d(r.Fig8.SearcherFB.N), f(r.Fig8.SearcherFB.Mean), f(r.Fig8.SearcherFB.Median), f(r.Fig8.SearcherFB.Std), f(r.Fig8.SearcherFB.Min), f(r.Fig8.SearcherFB.Max)},
	}
	return writeCSV(w, []string{"subpopulation", "n", "mean_eth", "median_eth", "std_eth", "min_eth", "max_eth"}, rows)
}

// Fig9CSV writes the private/public split; a no-op row set when no
// observation window existed.
func (r *Report) Fig9CSV(w io.Writer) error {
	var rows [][]string
	if r.Fig9 != nil {
		sp := r.Fig9.Split
		rows = append(rows,
			[]string{"flashbots", d(sp.Flashbots), f(sp.FlashbotsShare())},
			[]string{"private_non_flashbots", d(sp.Private), f(sp.PrivateShare())},
			[]string{"public", d(sp.Public), f(sp.PublicShare())},
		)
	}
	return writeCSV(w, []string{"channel", "sandwiches", "share"}, rows)
}

// Table1CSV writes the MEV dataset overview.
func (r *Report) Table1CSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Table1.Rows)+1)
	emit := func(row Table1Row) {
		rows = append(rows, []string{
			row.Strategy, d(row.Extractions), d(row.ViaFlashbots),
			d(row.ViaFlashLoans), d(row.ViaBoth),
		})
	}
	for _, row := range r.Table1.Rows {
		emit(row)
	}
	emit(r.Table1.Total)
	return writeCSV(w, []string{"strategy", "extractions", "via_flashbots", "via_flash_loans", "via_both"}, rows)
}

// BundlesCSV writes the §4.1 bundle-type counts.
func (r *Report) BundlesCSV(w io.Writer) error {
	types := make([]string, 0, len(r.Bundles.ByType))
	for t := range r.Bundles.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	rows := make([][]string, 0, len(types))
	for _, t := range types {
		rows = append(rows, []string{t, d(r.Bundles.ByType[t])})
	}
	return writeCSV(w, []string{"bundle_type", "count"}, rows)
}

// WriteCSVDir writes every artifact as <dir>/<name>.csv.
func (r *Report) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]func(io.Writer) error{
		"table1.csv":  r.Table1CSV,
		"fig3.csv":    r.Fig3CSV,
		"fig4.csv":    r.Fig4CSV,
		"fig5.csv":    r.Fig5CSV,
		"fig6.csv":    r.Fig6CSV,
		"fig7.csv":    r.Fig7CSV,
		"fig8.csv":    r.Fig8CSV,
		"fig9.csv":    r.Fig9CSV,
		"bundles.csv": r.BundlesCSV,
	}
	for name, fn := range files {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("measure: write %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
