package privinfer

import (
	"testing"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/flashbots"
	"mevscope/internal/types"
)

// fakeObs is a scripted observer.
type fakeObs struct {
	seen        map[types.Hash]bool
	start, stop uint64
}

func (f *fakeObs) Seen(h types.Hash) bool   { return f.seen[h] }
func (f *fakeObs) Window() (uint64, uint64) { return f.start, f.stop }

func h(i byte) types.Hash { return types.Hash{i} }

func newChainWithMiner(t *testing.T, miner types.Address, n int) *chain.Chain {
	t.Helper()
	c := chain.New(types.DefaultTimeline(100))
	for i := 0; i < n; i++ {
		b := &types.Block{Header: types.Header{Number: c.NextNumber(), Miner: miner, Time: types.Month(19).Date()}}
		b.Seal()
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestChannelString(t *testing.T) {
	if ChannelPublic.String() != "public" || ChannelFlashbots.String() != "flashbots" || ChannelPrivate.String() != "private" {
		t.Error("names")
	}
	if Channel(9).String() != "unknown" {
		t.Error("unknown")
	}
}

func TestClassifyTxs(t *testing.T) {
	miner := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, miner, 5)
	obs := &fakeObs{seen: map[types.Hash]bool{h(1): true}, start: c.Timeline.StartBlock}
	fbset := map[types.Hash]flashbots.BundleType{h(3): flashbots.TypeFlashbots}
	inf := New(c, obs, fbset, 0, 0)

	if got := inf.ClassifyTxs(h(1)); got != ChannelPublic {
		t.Errorf("observed = %v", got)
	}
	if got := inf.ClassifyTxs(h(2)); got != ChannelPrivate {
		t.Errorf("unobserved = %v", got)
	}
	if got := inf.ClassifyTxs(h(3)); got != ChannelFlashbots {
		t.Errorf("fb = %v", got)
	}
	// FB beats private: any tx in the FB set decides.
	if got := inf.ClassifyTxs(h(2), h(3)); got != ChannelFlashbots {
		t.Errorf("mixed = %v", got)
	}
	// One observed + one not → public (not *all* private).
	if got := inf.ClassifyTxs(h(1), h(2)); got != ChannelPublic {
		t.Errorf("partial = %v", got)
	}
}

func TestClassifySandwichWindow(t *testing.T) {
	miner := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, miner, 10)
	start := c.Timeline.StartBlock + 5
	obs := &fakeObs{seen: map[types.Hash]bool{h(2): true}, start: start}
	inf := New(c, obs, nil, start, 0)

	s := detect.Sandwich{Block: c.Timeline.StartBlock + 6, FrontTx: h(1), VictimTx: h(2), BackTx: h(3)}
	ch, ok := inf.ClassifySandwich(s)
	if !ok || ch != ChannelPrivate {
		t.Errorf("in window: %v %v", ch, ok)
	}
	// Outside window: excluded.
	early := detect.Sandwich{Block: c.Timeline.StartBlock + 1, FrontTx: h(1), VictimTx: h(2), BackTx: h(3)}
	if _, ok := inf.ClassifySandwich(early); ok {
		t.Error("pre-window sandwich should be excluded")
	}
}

func TestSplitSandwiches(t *testing.T) {
	miner := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, miner, 10)
	start := c.Timeline.StartBlock
	obs := &fakeObs{seen: map[types.Hash]bool{h(2): true, h(10): true, h(11): true}, start: start}
	fbset := map[types.Hash]flashbots.BundleType{h(20): flashbots.TypeFlashbots}
	inf := New(c, obs, fbset, start, 0)

	sandwiches := []detect.Sandwich{
		{Block: start + 1, FrontTx: h(1), VictimTx: h(2), BackTx: h(3)},   // private
		{Block: start + 2, FrontTx: h(10), VictimTx: h(2), BackTx: h(11)}, // public (both observed)
		{Block: start + 3, FrontTx: h(20), VictimTx: h(2), BackTx: h(21)}, // flashbots
	}
	split := inf.SplitSandwiches(sandwiches)
	if split.Total != 3 || split.Private != 1 || split.Public != 1 || split.Flashbots != 1 {
		t.Errorf("split = %+v", split)
	}
	if split.FlashbotsShare() < 0.33 || split.FlashbotsShare() > 0.34 {
		t.Error("fb share")
	}
	if split.PrivateShare() < 0.33 || split.PrivateShare() > 0.34 {
		t.Error("priv share")
	}
	if split.PublicShare() < 0.33 || split.PublicShare() > 0.34 {
		t.Error("pub share")
	}
	var empty SandwichSplit
	if empty.FlashbotsShare() != 0 || empty.PrivateShare() != 0 || empty.PublicShare() != 0 {
		t.Error("empty split shares should be 0")
	}
}

// TestFeedMatchesBatchClassification: verdicts accumulated incrementally
// via Feed must make SplitSandwiches / SplitAll agree exactly with a
// fresh inferrer classifying the complete sweep in one pass.
func TestFeedMatchesBatchClassification(t *testing.T) {
	miner := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, miner, 10)
	start := c.Timeline.StartBlock
	obs := &fakeObs{seen: map[types.Hash]bool{h(2): true, h(10): true, h(11): true}, start: start}
	fbset := map[types.Hash]flashbots.BundleType{h(20): flashbots.TypeFlashbots}

	res := &detect.Result{}
	streaming := New(c, obs, fbset, start, ^uint64(0))

	// Detections arrive over three "blocks"; Feed after each.
	res.Sandwiches = append(res.Sandwiches,
		detect.Sandwich{Block: start + 1, FrontTx: h(1), VictimTx: h(2), BackTx: h(3)})
	streaming.Feed(res)
	res.Sandwiches = append(res.Sandwiches,
		detect.Sandwich{Block: start + 2, FrontTx: h(10), VictimTx: h(2), BackTx: h(11)},
		detect.Sandwich{Block: start + 3, FrontTx: h(20), VictimTx: h(2), BackTx: h(21)})
	res.Arbitrages = append(res.Arbitrages,
		detect.Arbitrage{Block: start + 2, Tx: h(10)},
		detect.Arbitrage{Block: start + 3, Tx: h(30)})
	streaming.Feed(res)
	res.Liquidations = append(res.Liquidations,
		detect.Liquidation{Block: start + 4, Tx: h(20)})
	streaming.Feed(res)

	batch := New(c, obs, fbset, start, 0)
	wantSplit := batch.SplitSandwiches(res.Sandwiches)
	gotSplit := streaming.SplitSandwiches(res.Sandwiches)
	if gotSplit != wantSplit {
		t.Errorf("sandwich split: fed %+v, batch %+v", gotSplit, wantSplit)
	}
	wantAll := batch.SplitAll(res)
	gotAll := streaming.SplitAll(res)
	for _, kind := range []string{"sandwich", "arbitrage", "liquidation"} {
		if *gotAll.ByKind[kind] != *wantAll.ByKind[kind] {
			t.Errorf("%s split: fed %+v, batch %+v", kind, *gotAll.ByKind[kind], *wantAll.ByKind[kind])
		}
	}
	if gotAll.Totals() != wantAll.Totals() {
		t.Errorf("totals: fed %+v, batch %+v", gotAll.Totals(), wantAll.Totals())
	}
	// Redundant feed over an unchanged sweep is a no-op.
	streaming.Feed(res)
	if got := streaming.SplitSandwiches(res.Sandwiches); got != wantSplit {
		t.Error("redundant feed changed the verdicts")
	}
}

func TestLinkPrivateSandwiches(t *testing.T) {
	minerA := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, minerA, 10)
	start := c.Timeline.StartBlock
	obs := &fakeObs{seen: map[types.Hash]bool{}, start: start}
	inf := New(c, obs, nil, start, 0)

	acct := types.DeriveAddress("acct", 1)
	sandwiches := []detect.Sandwich{
		{Block: start + 1, Attacker: acct, FrontTx: h(1), VictimTx: h(2), BackTx: h(3)},
		{Block: start + 2, Attacker: acct, FrontTx: h(4), VictimTx: h(5), BackTx: h(6)},
	}
	links := inf.LinkPrivateSandwiches(sandwiches)
	if len(links) != 1 {
		t.Fatalf("links = %d", len(links))
	}
	l := links[0]
	if l.Account != acct || l.Total != 2 {
		t.Errorf("link = %+v", l)
	}
	m, single := l.SingleMiner()
	if !single || m != minerA {
		t.Error("single-miner attribution")
	}
	multi := MinerLink{Miners: map[types.Address]int{minerA: 1, types.DeriveAddress("m", 2): 1}}
	if _, ok := multi.SingleMiner(); ok {
		t.Error("multi-miner should not be single")
	}
}

func TestNewDefaults(t *testing.T) {
	miner := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, miner, 3)
	obs := &fakeObs{seen: map[types.Hash]bool{}, start: 42}
	inf := New(c, obs, nil, 0, 0)
	if inf.WindowStart != 42 {
		t.Error("start should default to observer window")
	}
	if inf.WindowEnd != c.Head().Header.Number {
		t.Error("end should default to head")
	}
	if !inf.InWindow(c.Head().Header.Number) {
		t.Error("head in window")
	}
	if inf.InWindow(1) {
		t.Error("pre-start not in window")
	}
}

func TestSplitAll(t *testing.T) {
	miner := types.DeriveAddress("m", 1)
	c := newChainWithMiner(t, miner, 10)
	start := c.Timeline.StartBlock
	obs := &fakeObs{seen: map[types.Hash]bool{h(2): true, h(30): true}, start: start}
	fbset := map[types.Hash]flashbots.BundleType{h(20): flashbots.TypeFlashbots}
	inf := New(c, obs, fbset, start, 0)

	res := &detect.Result{
		Sandwiches: []detect.Sandwich{
			{Block: start + 1, FrontTx: h(1), VictimTx: h(2), BackTx: h(3)}, // private
		},
		Arbitrages: []detect.Arbitrage{
			{Block: start + 2, Tx: h(20)}, // flashbots
			{Block: start + 3, Tx: h(30)}, // public (observed)
			{Block: start - 1, Tx: h(31)}, // out of window: skipped
		},
		Liquidations: []detect.Liquidation{
			{Block: start + 4, Tx: h(40)}, // private (unobserved)
		},
	}
	split := inf.SplitAll(res)
	if s := split.ByKind["sandwich"]; s.Total != 1 || s.Private != 1 {
		t.Errorf("sandwich split = %+v", s)
	}
	if a := split.ByKind["arbitrage"]; a.Total != 2 || a.Flashbots != 1 || a.Public != 1 {
		t.Errorf("arb split = %+v", a)
	}
	if l := split.ByKind["liquidation"]; l.Total != 1 || l.Private != 1 {
		t.Errorf("liq split = %+v", l)
	}
	tot := split.Totals()
	if tot.Total != 4 || tot.Private != 2 || tot.Flashbots != 1 || tot.Public != 1 {
		t.Errorf("totals = %+v", tot)
	}
}
