// Package privinfer implements the paper's §6.1 private-transaction
// inference: a mined transaction is private exactly when the measurement
// observer never saw it in the public mempool. Combined with the Flashbots
// public API this classifies MEV extractions into three channels —
// public, Flashbots, and private non-Flashbots — and reproduces the §6.3
// attribution of single-miner private pools.
package privinfer

import (
	"fmt"
	"sort"
	"sync"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/flashbots"
	obspkg "mevscope/internal/obs"
	"mevscope/internal/parallel"
	"mevscope/internal/types"
)

// Channel is the inferred submission path of a mined transaction set.
type Channel uint8

// Inferred channels.
const (
	// ChannelPublic transactions were observed pending before inclusion.
	ChannelPublic Channel = iota
	// ChannelFlashbots transactions appear in the Flashbots blocks API.
	ChannelFlashbots
	// ChannelPrivate transactions were never observed pending and are not
	// in the Flashbots dataset: another private pool.
	ChannelPrivate
)

// String names the channel.
func (c Channel) String() string {
	switch c {
	case ChannelPublic:
		return "public"
	case ChannelFlashbots:
		return "flashbots"
	case ChannelPrivate:
		return "private"
	default:
		return "unknown"
	}
}

// Observer is the view the inference needs of the pending-transaction
// recorder: whether a hash was ever seen, and the recording window.
type Observer interface {
	Seen(h types.Hash) bool
	Window() (start, stop uint64)
}

// Inferrer classifies mined transactions.
type Inferrer struct {
	Chain *chain.Chain
	Obs   Observer
	FBSet map[types.Hash]flashbots.BundleType

	// WindowStart and WindowEnd bound the analysis to blocks where the
	// observer was live (the paper's Nov 23rd 2021 – Mar 23rd 2022 range).
	WindowStart, WindowEnd uint64

	// Workers sizes the classification worker pool (0 or 1 = sequential,
	// <0 = runtime.NumCPU()). Classification is read-only over the chain,
	// observer and Flashbots set, and per-extraction verdicts are reduced
	// in input order, so results are identical for any worker count.
	Workers int

	// Span, when non-nil, is the parent each classification fan-out
	// records itself under as an "infer" span (internal/obs). The memoized
	// paths record nothing — they do no work. Nil disables tracing.
	Span *obspkg.Span

	// Sandwich verdicts memoized per input slice: Figure 9, the MEV split
	// and the §6.3 attribution all classify the same detector sweep, so
	// the verdicts compute once and are shared (guarded for the
	// concurrent report builders).
	mu        sync.Mutex
	cacheKey  *detect.Sandwich
	cacheLen  int
	cacheVerd []verdict

	// Incremental verdict logs, maintained by Feed: verdicts for the first
	// fedSand/fedArb/fedLiq detections of the streaming sweep. Verdicts
	// are stable as the world grows (observer records are append-only, a
	// transaction's Flashbots membership is fixed at inclusion and the
	// window start is fixed), so a logged verdict never needs revisiting.
	// The fed*Key pointers pin the identity of the fed slices so the logs
	// are never returned for an unrelated slice of equal length.
	fedSand, fedArb, fedLiq int
	sandLog, arbLog, liqLog []verdict
	fedSandKey              *detect.Sandwich
	fedArbKey               *detect.Arbitrage
	fedLiqKey               *detect.Liquidation
}

// New creates an Inferrer over the observation window. If start/stop are
// zero they default to the observer's own window and the chain head.
func New(c *chain.Chain, obs Observer, fbset map[types.Hash]flashbots.BundleType, start, end uint64) *Inferrer {
	if fbset == nil {
		fbset = map[types.Hash]flashbots.BundleType{}
	}
	if start == 0 {
		start, _ = obs.Window()
	}
	if end == 0 {
		if h := c.Head(); h != nil {
			end = h.Header.Number
		}
	}
	return &Inferrer{Chain: c, Obs: obs, FBSet: fbset, WindowStart: start, WindowEnd: end}
}

// InWindow reports whether a block height falls in the analysis window.
func (in *Inferrer) InWindow(block uint64) bool {
	return block >= in.WindowStart && block <= in.WindowEnd
}

// IsPrivateTx reports whether a mined transaction was never observed in
// the public mempool (the §6.1 set-difference definition).
func (in *Inferrer) IsPrivateTx(h types.Hash) bool {
	return !in.Obs.Seen(h)
}

// ClassifyTxs classifies a group of extractor transactions:
// Flashbots if any appears in the public Flashbots dataset, private if all
// are unobserved, public otherwise.
func (in *Inferrer) ClassifyTxs(hashes ...types.Hash) Channel {
	for _, h := range hashes {
		if _, ok := in.FBSet[h]; ok {
			return ChannelFlashbots
		}
	}
	allPrivate := len(hashes) > 0
	for _, h := range hashes {
		if !in.IsPrivateTx(h) {
			allPrivate = false
			break
		}
	}
	if allPrivate {
		return ChannelPrivate
	}
	return ChannelPublic
}

// ClassifySandwich applies the §6.1 sandwich rule: the attacker's two
// transactions decide the channel; a *private* sandwich additionally
// requires the victim to have been publicly observed (frontrunning other
// private transactions is not possible).
func (in *Inferrer) ClassifySandwich(s detect.Sandwich) (Channel, bool) {
	if !in.InWindow(s.Block) {
		return ChannelPublic, false
	}
	ch := in.ClassifyTxs(s.FrontTx, s.BackTx)
	if ch == ChannelPrivate && in.IsPrivateTx(s.VictimTx) {
		// All three unobserved: consistent with another private pool's
		// internal flow, but outside the paper's definition — fold into
		// private anyway (victim privacy is not observable to us either).
		return ChannelPrivate, true
	}
	return ch, true
}

// SandwichSplit is the §6.2 accounting over the analysis window.
type SandwichSplit struct {
	Total     int
	Flashbots int
	Private   int // private, non-Flashbots
	Public    int
}

// FlashbotsShare is the fraction of sandwiches via Flashbots.
func (s SandwichSplit) FlashbotsShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Flashbots) / float64(s.Total)
}

// PrivateShare is the fraction via non-Flashbots private pools.
func (s SandwichSplit) PrivateShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Private) / float64(s.Total)
}

// PublicShare is the fraction carried out in the public mempool.
func (s SandwichSplit) PublicShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Public) / float64(s.Total)
}

// workers resolves the pool size: the zero value stays sequential.
func (in *Inferrer) workers() int {
	if in.Workers == 0 {
		return 1
	}
	return in.Workers
}

// verdict is one classification outcome, produced by a worker and reduced
// sequentially in input order.
type verdict struct {
	ch Channel
	ok bool
}

// sandwichVerdict applies the §6.1 sandwich rule to one detection.
func (in *Inferrer) sandwichVerdict(s detect.Sandwich) verdict {
	ch, ok := in.ClassifySandwich(s)
	return verdict{ch: ch, ok: ok}
}

// arbVerdict applies the plain transaction rule to one arbitrage.
func (in *Inferrer) arbVerdict(a detect.Arbitrage) verdict {
	if !in.InWindow(a.Block) {
		return verdict{}
	}
	return verdict{ch: in.ClassifyTxs(a.Tx), ok: true}
}

// liqVerdict applies the plain transaction rule to one liquidation.
func (in *Inferrer) liqVerdict(l detect.Liquidation) verdict {
	if !in.InWindow(l.Block) {
		return verdict{}
	}
	return verdict{ch: in.ClassifyTxs(l.Tx), ok: true}
}

// Verdict is one exported classification outcome: the inferred channel
// and whether the detection fell inside the analysis window. It is the
// serializable form of the incremental verdict logs — what a sealed
// month partial (internal/core/measure) stores so a merged range can
// reuse the month's inference without an observer.
type Verdict struct {
	Channel Channel `json:"channel"`
	OK      bool    `json:"ok"`
}

// Verdicts classifies the complete sweep and returns the per-detection
// outcomes in detection order — sandwiches, arbitrages, liquidations.
// Verdicts are stable (observer records are append-only, Flashbots
// membership is fixed at inclusion, the window start is fixed), so the
// returned slices are valid snapshots of the month's inference.
func (in *Inferrer) Verdicts(res *detect.Result) (sandwiches, arbitrages, liquidations []Verdict) {
	export := func(vs []verdict) []Verdict {
		out := make([]Verdict, len(vs))
		for i, v := range vs {
			out[i] = Verdict{Channel: v.ch, OK: v.ok}
		}
		return out
	}
	return export(in.classifySandwiches(res.Sandwiches)),
		export(in.classifyArbs(res.Arbitrages)),
		export(in.classifyLiqs(res.Liquidations))
}

// FromVerdicts builds an Inferrer whose classifications are served from
// precomputed verdicts instead of an observer: the verdict slices are
// installed as complete incremental logs over res, so SplitSandwiches,
// SplitAll and LinkPrivateSandwiches return exactly what an Inferrer
// that classified res live would — the merged-partial assembly path.
// Each verdict slice must be exactly as long as its detection slice
// (verdict i belongs to detection i).
func FromVerdicts(c *chain.Chain, res *detect.Result, sand, arb, liq []Verdict) (*Inferrer, error) {
	if len(sand) != len(res.Sandwiches) || len(arb) != len(res.Arbitrages) || len(liq) != len(res.Liquidations) {
		return nil, fmt.Errorf("privinfer: verdict counts (%d, %d, %d) do not match detections (%d, %d, %d)",
			len(sand), len(arb), len(liq), len(res.Sandwiches), len(res.Arbitrages), len(res.Liquidations))
	}
	imp := func(vs []Verdict) []verdict {
		out := make([]verdict, len(vs))
		for i, v := range vs {
			out[i] = verdict{ch: v.Channel, ok: v.OK}
		}
		return out
	}
	in := &Inferrer{Chain: c, FBSet: map[types.Hash]flashbots.BundleType{}}
	in.sandLog, in.fedSand = imp(sand), len(sand)
	in.arbLog, in.fedArb = imp(arb), len(arb)
	in.liqLog, in.fedLiq = imp(liq), len(liq)
	if len(res.Sandwiches) > 0 {
		in.fedSandKey = &res.Sandwiches[0]
	}
	if len(res.Arbitrages) > 0 {
		in.fedArbKey = &res.Arbitrages[0]
	}
	if len(res.Liquidations) > 0 {
		in.fedLiqKey = &res.Liquidations[0]
	}
	return in, nil
}

// Feed classifies every detection appended to res since the previous Feed
// call, extending the incremental verdict logs. The streaming
// block-follower calls it after each fed block; a subsequent SplitAll /
// SplitSandwiches / LinkPrivateSandwiches over the same sweep then reuses
// the logged verdicts instead of reclassifying the whole history. res
// must be the same logically-growing sweep between calls (append-only,
// as detect.Scanner produces).
func (in *Inferrer) Feed(res *detect.Result) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for ; in.fedSand < len(res.Sandwiches); in.fedSand++ {
		in.sandLog = append(in.sandLog, in.sandwichVerdict(res.Sandwiches[in.fedSand]))
	}
	for ; in.fedArb < len(res.Arbitrages); in.fedArb++ {
		in.arbLog = append(in.arbLog, in.arbVerdict(res.Arbitrages[in.fedArb]))
	}
	for ; in.fedLiq < len(res.Liquidations); in.fedLiq++ {
		in.liqLog = append(in.liqLog, in.liqVerdict(res.Liquidations[in.fedLiq]))
	}
	// Record the fed slices' identities (appends may have reallocated the
	// backing arrays since the previous Feed).
	if len(res.Sandwiches) > 0 {
		in.fedSandKey = &res.Sandwiches[0]
	}
	if len(res.Arbitrages) > 0 {
		in.fedArbKey = &res.Arbitrages[0]
	}
	if len(res.Liquidations) > 0 {
		in.fedLiqKey = &res.Liquidations[0]
	}
}

// classifySandwiches fans the §6.1 sandwich rule across the worker pool,
// memoizing the verdicts per input slice. When the incremental Feed log
// already covers the whole slice the logged verdicts are returned
// directly — verdicts are stable, so both paths agree bit for bit. A
// cache miss under concurrent first calls may classify twice; the results
// are identical either way.
func (in *Inferrer) classifySandwiches(sandwiches []detect.Sandwich) []verdict {
	var key *detect.Sandwich
	if len(sandwiches) > 0 {
		key = &sandwiches[0]
	}
	in.mu.Lock()
	if in.fedSand > 0 && in.fedSand == len(sandwiches) && in.fedSandKey == key {
		v := in.sandLog
		in.mu.Unlock()
		return v
	}
	if in.cacheVerd != nil && in.cacheKey == key && in.cacheLen == len(sandwiches) {
		v := in.cacheVerd
		in.mu.Unlock()
		return v
	}
	in.mu.Unlock()
	sp := in.Span.Child(obspkg.StageInfer)
	sp.SetLabel("sandwiches")
	sp.SetTxs(len(sandwiches))
	v := parallel.MapSpan(sp, len(sandwiches), in.workers(), func(i int) verdict {
		return in.sandwichVerdict(sandwiches[i])
	})
	sp.End()
	in.mu.Lock()
	in.cacheKey, in.cacheLen, in.cacheVerd = key, len(sandwiches), v
	in.mu.Unlock()
	return v
}

// classifyArbs classifies arbitrages, reusing the Feed log when it covers
// the whole slice.
func (in *Inferrer) classifyArbs(arbs []detect.Arbitrage) []verdict {
	in.mu.Lock()
	if in.fedArb > 0 && in.fedArb == len(arbs) && in.fedArbKey == &arbs[0] {
		v := in.arbLog
		in.mu.Unlock()
		return v
	}
	in.mu.Unlock()
	sp := in.Span.Child(obspkg.StageInfer)
	sp.SetLabel("arbitrages")
	sp.SetTxs(len(arbs))
	defer sp.End()
	return parallel.MapSpan(sp, len(arbs), in.workers(), func(i int) verdict {
		return in.arbVerdict(arbs[i])
	})
}

// classifyLiqs classifies liquidations, reusing the Feed log when it
// covers the whole slice.
func (in *Inferrer) classifyLiqs(liqs []detect.Liquidation) []verdict {
	in.mu.Lock()
	if in.fedLiq > 0 && in.fedLiq == len(liqs) && in.fedLiqKey == &liqs[0] {
		v := in.liqLog
		in.mu.Unlock()
		return v
	}
	in.mu.Unlock()
	sp := in.Span.Child(obspkg.StageInfer)
	sp.SetLabel("liquidations")
	sp.SetTxs(len(liqs))
	defer sp.End()
	return parallel.MapSpan(sp, len(liqs), in.workers(), func(i int) verdict {
		return in.liqVerdict(liqs[i])
	})
}

// SplitSandwiches classifies every detected sandwich inside the window.
func (in *Inferrer) SplitSandwiches(sandwiches []detect.Sandwich) SandwichSplit {
	var out SandwichSplit
	for _, v := range in.classifySandwiches(sandwiches) {
		if !v.ok {
			continue
		}
		out.add(v.ch)
	}
	return out
}

// add counts one classified extraction.
func (s *SandwichSplit) add(ch Channel) {
	s.Total++
	switch ch {
	case ChannelFlashbots:
		s.Flashbots++
	case ChannelPrivate:
		s.Private++
	default:
		s.Public++
	}
}

// MinerLink aggregates, per extractor account, which miners mined its
// private non-Flashbots sandwiches — the §6.3 analysis.
type MinerLink struct {
	Account types.Address
	// Miners maps coinbase → count of this account's private sandwiches
	// it mined.
	Miners map[types.Address]int
	Total  int
}

// SingleMiner reports whether every private sandwich of the account was
// mined by one miner (the paper's signal for a miner-owned channel).
func (l MinerLink) SingleMiner() (types.Address, bool) {
	if len(l.Miners) != 1 {
		return types.Address{}, false
	}
	for m := range l.Miners {
		return m, true
	}
	return types.Address{}, false
}

// LinkPrivateSandwiches builds the account→miner map for private
// non-Flashbots sandwiches in the window.
func (in *Inferrer) LinkPrivateSandwiches(sandwiches []detect.Sandwich) []MinerLink {
	byAccount := map[types.Address]*MinerLink{}
	verdicts := in.classifySandwiches(sandwiches)
	for i, s := range sandwiches {
		if !verdicts[i].ok || verdicts[i].ch != ChannelPrivate {
			continue
		}
		blk, err := in.Chain.ByNumber(s.Block)
		if err != nil {
			continue
		}
		l := byAccount[s.Attacker]
		if l == nil {
			l = &MinerLink{Account: s.Attacker, Miners: map[types.Address]int{}}
			byAccount[s.Attacker] = l
		}
		l.Miners[blk.Header.Miner]++
		l.Total++
	}
	out := make([]MinerLink, 0, len(byAccount))
	for _, l := range byAccount {
		out = append(out, *l)
	}
	// Order by volume, tie-broken by account bytes so the ranking does not
	// depend on map iteration order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		a, b := out[i].Account, out[j].Account
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// MEVSplit extends the §6 accounting to every MEV type: per-kind counts of
// public / Flashbots / private extraction inside the window (Figure 9's
// "Distribution of private vs. public MEV extraction").
type MEVSplit struct {
	// ByKind maps a kind label ("sandwich", "arbitrage", "liquidation")
	// to its channel counts.
	ByKind map[string]*SandwichSplit
}

// Totals sums every kind.
func (m MEVSplit) Totals() SandwichSplit {
	var out SandwichSplit
	for _, s := range m.ByKind {
		out.Total += s.Total
		out.Flashbots += s.Flashbots
		out.Private += s.Private
		out.Public += s.Public
	}
	return out
}

// SplitAll classifies every detected extraction in the window. Sandwiches
// use the §6.1 sandwich rule; single-transaction extractions use the plain
// transaction rule.
func (in *Inferrer) SplitAll(res *detect.Result) MEVSplit {
	out := MEVSplit{ByKind: map[string]*SandwichSplit{
		"sandwich":    {},
		"arbitrage":   {},
		"liquidation": {},
	}}
	for _, v := range in.classifySandwiches(res.Sandwiches) {
		if v.ok {
			out.ByKind["sandwich"].add(v.ch)
		}
	}
	for _, v := range in.classifyArbs(res.Arbitrages) {
		if v.ok {
			out.ByKind["arbitrage"].add(v.ch)
		}
	}
	for _, v := range in.classifyLiqs(res.Liquidations) {
		if v.ok {
			out.ByKind["liquidation"].add(v.ch)
		}
	}
	return out
}
