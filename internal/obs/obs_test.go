package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceIsInert: the disabled recorder — a nil *Trace / *Span —
// must accept every call without doing anything, because instrumented
// code threads spans unconditionally.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil {
		t.Error("nil trace Root() != nil")
	}
	if tr.Spans() != nil {
		t.Error("nil trace Spans() != nil")
	}
	if tr.Summary() != nil {
		t.Error("nil trace Summary() != nil")
	}
	if tr.Coverage() != 0 {
		t.Error("nil trace Coverage() != 0")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil trace Chrome export is not valid JSON: %v", err)
	}
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}

	var sp *Span
	c := sp.Child("x")
	if c != nil {
		t.Error("nil span Child() != nil")
	}
	sp.End()
	sp.SetBlocks(1)
	sp.SetTxs(1)
	sp.SetBytes(1)
	sp.SetWorkers(1)
	sp.SetLabel("x")
	sp.AddBusy(time.Second)
	if sp.Duration() != 0 || sp.Utilization() != 0 || sp.Name() != "" {
		t.Error("nil span accessors not zero")
	}
}

// TestNilSpanZeroAllocs pins the disabled path at zero allocations:
// the full per-stage call pattern on a nil span must not allocate.
func TestNilSpanZeroAllocs(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(100, func() {
		c := sp.Child(StageDetect)
		c.SetBlocks(100)
		c.SetWorkers(4)
		c.AddBusy(time.Millisecond)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("nil span path allocates %v per run; want 0", allocs)
	}
}

// TestSpanTree: children register under the right parent with the
// right depth, attrs round-trip, and durations are monotone.
func TestSpanTree(t *testing.T) {
	tr := New("test")
	root := tr.Root()
	a := root.Child("a")
	a.SetBlocks(10)
	a.SetTxs(20)
	a.SetBytes(30)
	a.SetLabel("first")
	b := a.Child("b")
	time.Sleep(2 * time.Millisecond)
	b.End()
	a.End()
	root.End()

	if b.Parent() != a || a.Parent() != root || root.Parent() != nil {
		t.Error("parent links wrong")
	}
	if a.depth() != 1 || b.depth() != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", a.depth(), b.depth())
	}
	if !b.isAncestor(root) || !b.isAncestor(a) || b.isAncestor(b) {
		t.Error("isAncestor wrong")
	}
	if a.Blocks() != 10 || a.Txs() != 20 || a.Bytes() != 30 || a.Label() != "first" {
		t.Error("attrs did not round-trip")
	}
	if b.Duration() <= 0 || a.Duration() < b.Duration() || root.Duration() < a.Duration() {
		t.Errorf("durations not nested: root=%v a=%v b=%v",
			root.Duration(), a.Duration(), b.Duration())
	}
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("Spans() = %d spans; want 3", got)
	}
	// End is idempotent.
	d := a.Duration()
	a.End()
	if a.Duration() != d {
		t.Error("second End changed duration")
	}
}

// TestUtilization: no pool → 0; a pool span whose busy time exceeds
// wall×workers (clock granularity) clamps to 1.
func TestUtilization(t *testing.T) {
	tr := New("test")
	sp := tr.Root().Child("pool")
	if sp.Utilization() != 0 {
		t.Error("utilization without workers != 0")
	}
	sp.SetWorkers(2)
	sp.AddBusy(time.Hour)
	sp.End()
	if got := sp.Utilization(); got != 1 {
		t.Errorf("over-busy utilization = %v; want clamped 1", got)
	}
}

// TestConcurrentChildren: spans may be created and ended from many
// goroutines at once (the parallel.Map workers do exactly this).
func TestConcurrentChildren(t *testing.T) {
	tr := New("test")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("worker")
			c.AddBusy(time.Microsecond)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 33 {
		t.Errorf("Spans() = %d; want 33", got)
	}
	ids := map[int]bool{}
	for _, sp := range tr.Spans() {
		if ids[sp.id] {
			t.Fatalf("duplicate span id %d", sp.id)
		}
		ids[sp.id] = true
	}
}

// TestHooks: OnSpanStart/OnSpanEnd fire synchronously with the span.
func TestHooks(t *testing.T) {
	tr := New("test")
	var started, ended []string
	tr.OnSpanStart = func(sp *Span) { started = append(started, sp.Name()) }
	tr.OnSpanEnd = func(sp *Span) { ended = append(ended, sp.Name()) }
	a := tr.Root().Child("a")
	b := a.Child("b")
	b.End()
	a.End()
	if strings.Join(started, ",") != "a,b" {
		t.Errorf("started = %v", started)
	}
	if strings.Join(ended, ",") != "b,a" {
		t.Errorf("ended = %v", ended)
	}
}

// TestWriteChrome: the export parses as a Chrome trace, every span
// becomes one "X" event carrying its id/parent, and overlapping
// sibling spans land on distinct lanes while a child nested inside its
// parent shares the parent's lane.
func TestWriteChrome(t *testing.T) {
	tr := New("test")
	root := tr.Root()
	s1 := root.Child("decode")
	s2 := root.Child("decode") // overlaps s1 — both open
	time.Sleep(time.Millisecond)
	inner := s1.Child("frame")
	inner.End()
	s1.End()
	s2.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	lanes := map[string]int{}
	var xEvents int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			if ev.Args["span"] == nil {
				t.Errorf("event %q missing span id", ev.Name)
			}
			if ev.Name != "test" && ev.Args["parent"] == nil {
				t.Errorf("non-root event %q missing parent id", ev.Name)
			}
			key := ev.Name
			if v, ok := ev.Args["span"].(float64); ok {
				key = ev.Name + string(rune('0'+int(v)))
			}
			lanes[key] = ev.Tid
		case "M":
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if xEvents != 4 {
		t.Fatalf("exported %d X events; want 4", xEvents)
	}
	// s1 has id 2, s2 id 3, inner id 4 (creation order after root=1).
	if lanes["decode2"] == lanes["decode3"] {
		t.Error("overlapping sibling decodes share a lane")
	}
	if lanes["frame4"] != lanes["decode2"] {
		t.Error("nested child not on its parent's lane")
	}
}

// TestSummaryAndCoverage: stages aggregate by name with first-seen
// order, and Coverage measures the union of the root's children.
func TestSummaryAndCoverage(t *testing.T) {
	tr := New("test")
	root := tr.Root()
	a := root.Child("detect")
	time.Sleep(4 * time.Millisecond)
	a.End()
	b := root.Child("build")
	b.SetWorkers(2)
	b.AddBusy(time.Millisecond)
	time.Sleep(4 * time.Millisecond)
	b.End()
	c := root.Child("build")
	c.End()
	root.End()

	rows := tr.Summary()
	if len(rows) != 3 {
		t.Fatalf("summary rows = %d; want 3 (root, detect, build)", len(rows))
	}
	if rows[0].Name != "test" || rows[1].Name != "detect" || rows[2].Name != "build" {
		t.Errorf("row order = %s, %s, %s", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	if rows[2].Count != 2 {
		t.Errorf("build count = %d; want 2", rows[2].Count)
	}
	if rows[0].Share < 0.99 || rows[0].Share > 1.01 {
		t.Errorf("root share = %v; want ~1", rows[0].Share)
	}
	if rows[2].Utilization <= 0 || rows[2].Utilization > 1 {
		t.Errorf("build utilization = %v; want (0, 1]", rows[2].Utilization)
	}
	if cov := tr.Coverage(); cov < 0.9 || cov > 1.0 {
		t.Errorf("coverage = %v; want ~1 (children span nearly the whole root)", cov)
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage", "detect", "build", "cover"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary text missing %q:\n%s", want, buf.String())
		}
	}
}
