package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry in the Chrome trace-event format's
// traceEvents array. Only "X" (complete) and "M" (metadata) phases are
// emitted; ts and dur are microseconds. Perfetto and chrome://tracing
// both load this shape directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the trace as Chrome trace-event JSON. Concurrent
// sibling spans (parallel segment decodes, the artifact builder
// fan-out) are assigned separate lanes (tids) so they render side by
// side instead of stacking into a false hierarchy. Call after the
// traced work has completed; spans still running are exported with
// their elapsed-so-far duration.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].id < spans[j].id
	})
	lanes := assignLanes(spans)

	maxLane := 0
	for _, l := range lanes {
		if l > maxLane {
			maxLane = l
		}
	}
	events := make([]chromeEvent, 0, len(spans)+maxLane+2)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "mevscope " + t.name},
	})
	for l := 0; l <= maxLane; l++ {
		name := "pipeline"
		if l > 0 {
			name = "workers"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: l,
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		args := map[string]any{"span": sp.id}
		if sp.parent != nil {
			args["parent"] = sp.parent.id
		}
		if sp.label != "" {
			args["label"] = sp.label
		}
		if sp.blocks > 0 {
			args["blocks"] = sp.blocks
		}
		if sp.txs > 0 {
			args["txs"] = sp.txs
		}
		if sp.bytes > 0 {
			args["bytes"] = sp.bytes
		}
		if sp.workers > 0 {
			args["workers"] = sp.workers
			args["utilization"] = round3(sp.Utilization())
		}
		events = append(events, chromeEvent{
			Name: sp.name,
			Ph:   "X",
			Ts:   micros(sp.start),
			Dur:  micros(sp.Duration()),
			Pid:  1,
			Tid:  lanes[sp],
		})
		events[len(events)-1].Args = args
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// assignLanes greedily places spans (pre-sorted by start) onto lanes.
// A span prefers its parent's lane; nesting inside an ancestor is fine
// (that is what renders the hierarchy), but overlapping a non-ancestor
// already on the lane is not, so the span walks to the first lane free
// of such conflicts. O(n²) — traces hold tens to hundreds of spans.
func assignLanes(spans []*Span) map[*Span]int {
	lanes := make(map[*Span]int, len(spans))
	for _, sp := range spans {
		want := 0
		if sp.parent != nil {
			if l, ok := lanes[sp.parent]; ok {
				want = l
			}
		}
		if laneFree(spans, lanes, sp, want) {
			lanes[sp] = want
			continue
		}
		for lane := 0; ; lane++ {
			if lane != want && laneFree(spans, lanes, sp, lane) {
				lanes[sp] = lane
				break
			}
		}
	}
	return lanes
}

func laneFree(spans []*Span, lanes map[*Span]int, sp *Span, lane int) bool {
	s0, s1 := sp.start, sp.start+sp.Duration()
	for _, other := range spans {
		l, ok := lanes[other]
		if !ok || l != lane || other == sp {
			continue
		}
		if sp.isAncestor(other) {
			continue
		}
		o0, o1 := other.start, other.start+other.Duration()
		if s0 < o1 && o0 < s1 {
			return false
		}
	}
	return true
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}
