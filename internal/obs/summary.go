package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Stage is one row of the per-stage summary: every span sharing a name
// aggregated into total wall time, share of the root span's wall, and
// (for pool stages) a busy-time-weighted utilization.
type Stage struct {
	Name        string  `json:"stage"`
	Depth       int     `json:"depth"`
	Count       int     `json:"count"`
	WallSeconds float64 `json:"wall_seconds"`
	Share       float64 `json:"share"` // of root wall; nested stages overlap their parents
	Utilization float64 `json:"utilization,omitempty"`
	Blocks      int64   `json:"blocks,omitempty"`
	Txs         int64   `json:"txs,omitempty"`
	Bytes       int64   `json:"bytes,omitempty"`
}

// Summary aggregates the trace's spans by stage name, ordered by first
// occurrence. Depth is the tree depth of the shallowest span with that
// name; nested stages (e.g. archive:decode under archive:restore)
// overlap their parents, so shares do not sum to 100%.
func (t *Trace) Summary() []Stage {
	if t == nil {
		return nil
	}
	root := t.Root()
	rootWall := root.Duration()
	order := []string{}
	rows := map[string]*Stage{}
	weighted := map[string]float64{} // utilization numerator: Σ busy
	capacity := map[string]float64{} // utilization denominator: Σ wall×workers
	for _, sp := range t.Spans() {
		st, ok := rows[sp.name]
		if !ok {
			st = &Stage{Name: sp.name, Depth: sp.depth()}
			rows[sp.name] = st
			order = append(order, sp.name)
		}
		if d := sp.depth(); d < st.Depth {
			st.Depth = d
		}
		st.Count++
		st.WallSeconds += sp.Duration().Seconds()
		st.Blocks += sp.Blocks()
		st.Txs += sp.Txs()
		st.Bytes += sp.Bytes()
		if sp.Workers() > 0 {
			weighted[sp.name] += float64(sp.Busy())
			capacity[sp.name] += float64(sp.Duration()) * float64(sp.Workers())
		}
	}
	out := make([]Stage, 0, len(order))
	for _, name := range order {
		st := rows[name]
		if rootWall > 0 {
			st.Share = st.WallSeconds / rootWall.Seconds()
		}
		if c := capacity[name]; c > 0 {
			st.Utilization = weighted[name] / c
			if st.Utilization > 1 {
				st.Utilization = 1
			}
		}
		out = append(out, *st)
	}
	return out
}

// Coverage reports how much of the root span's wall time is accounted
// for by its direct children, as the length of the union of their
// intervals divided by the root's duration. This is the acceptance
// metric for "the stage summary accounts for ≥95% of wall time".
func (t *Trace) Coverage() float64 {
	if t == nil {
		return 0
	}
	root := t.Root()
	rootWall := root.Duration()
	if rootWall <= 0 {
		return 0
	}
	type iv struct{ lo, hi time.Duration }
	var ivs []iv
	for _, sp := range t.Spans() {
		if sp.parent == root {
			ivs = append(ivs, iv{sp.start, sp.start + sp.Duration()})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	var covered, hi time.Duration
	for _, v := range ivs {
		if v.lo > hi {
			covered += v.hi - v.lo
			hi = v.hi
		} else if v.hi > hi {
			covered += v.hi - hi
			hi = v.hi
		}
	}
	return float64(covered) / float64(rootWall)
}

// WriteSummary renders the per-stage table as aligned text, stages
// indented by tree depth.
func (t *Trace) WriteSummary(w io.Writer) error {
	if t == nil {
		return nil
	}
	rows := t.Summary()
	fmt.Fprintf(w, "%-28s %6s %10s %7s %6s %9s %9s %11s\n",
		"stage", "count", "wall", "%", "util", "blocks", "txs", "bytes")
	for _, st := range rows {
		indent := strings.Repeat("  ", st.Depth)
		util := ""
		if st.Utilization > 0 {
			util = fmt.Sprintf("%.2f", st.Utilization)
		}
		fmt.Fprintf(w, "%-28s %6d %10s %6.1f%% %6s %9s %9s %11s\n",
			indent+st.Name, st.Count,
			fmtSeconds(st.WallSeconds), st.Share*100, util,
			fmtCount(st.Blocks), fmtCount(st.Txs), fmtCount(st.Bytes))
	}
	_, err := fmt.Fprintf(w, "top-level stages cover %.1f%% of wall time\n", t.Coverage()*100)
	return err
}

func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	return d.Round(time.Microsecond * 10).String()
}

func fmtCount(n int64) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprint(n)
}
