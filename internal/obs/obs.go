// Package obs is the pipeline flight recorder: a zero-dependency,
// concurrency-safe hierarchical span tracer for the mevscope pipeline.
//
// A Trace is a tree of Spans. Each span names one stage of work (a
// constant from this package, or a free-form name), carries typed
// attributes (blocks, txs, bytes, worker count, a short label), and —
// for spans that wrap a worker pool — accumulates per-worker busy time
// so the trace can report pool utilization as busy/(wall×workers).
//
// The disabled path is strictly zero-overhead: every method on *Trace
// and *Span is nil-safe, so code threads a possibly-nil span through
// the pipeline unconditionally and pays nothing (no allocations, no
// atomics, one nil check) when tracing is off. Instrumented call sites
// therefore never branch on "is tracing enabled" themselves.
//
// Two export views are provided: WriteChrome emits Chrome trace-event
// JSON loadable in Perfetto (chrome://tracing), with concurrent sibling
// spans laid out on separate lanes; WriteSummary and Summary aggregate
// spans by stage name into a wall/%/utilization table.
//
// Concurrency: spans may be created and ended from any goroutine
// (Child registration is mutex-protected, busy time is atomic). The
// attribute setters on a span must be called by the goroutine that owns
// it, and the export views must run after the traced work has joined.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Canonical stage names. Using shared constants keeps the /metrics
// stage label set bounded and lets tooling (traceck, the -progress
// ticker) recognise pipeline stages by name.
const (
	StageSim       = "sim"             // whole simulation run
	StageSimMonth  = "sim:month"       // one study month of sealing
	StageRun       = "run"             // one seed of an ensemble
	StageRestore   = "archive:restore" // archive.ReadRange of a window
	StageDecode    = "archive:decode"  // one segment decoded from disk
	StageColumn    = "archive:column"  // one v3 column chunk decoded
	StageEncode    = "archive:encode"  // one segment written to disk
	StageDetect    = "detect"          // MEV detection scan
	StageProfit    = "profit"          // profit resolution
	StageInfer     = "infer"           // private-tx classification fan-out
	StageAggregate = "aggregate"       // per-month accumulation pass
	StageBuild     = "build"           // artifact builder fan-out
	StageArtifact  = "artifact"        // one report artifact
	StageRotate    = "stream:rotate"   // follower month rotation
	StageSnapshot  = "stream:snapshot" // follower report snapshot
	StageRender    = "render"          // report rendering / encoding
	StagePartial   = "analyze:partial" // one month partial (memoized or computed)
)

// MetricStages is the bounded set of stage names the query server
// exports as mevscope_stage_seconds{stage=...} histograms. "total"
// (the root span of a cold build) is added by the server itself.
func MetricStages() []string {
	return []string{
		StageRestore, StageDecode, StageDetect, StageProfit,
		StageInfer, StageAggregate, StageBuild, StagePartial,
	}
}

// Trace is one recording session: a root span plus every descendant
// created through Child. The zero value is not usable; call New.
// A nil *Trace is the disabled recorder — all methods no-op.
type Trace struct {
	name  string
	start time.Time

	// OnSpanStart and OnSpanEnd, when set, are invoked synchronously
	// from the goroutine creating or ending a span. Set them before
	// any concurrent spans exist; the callbacks must be safe to call
	// from multiple goroutines.
	OnSpanStart func(*Span)
	OnSpanEnd   func(*Span)

	mu    sync.Mutex
	spans []*Span
	root  *Span
}

// New starts a trace whose root span is already running.
func New(name string) *Trace {
	t := &Trace{name: name, start: time.Now()}
	t.root = &Span{trace: t, id: 1, name: name}
	t.spans = []*Span{t.root}
	return t
}

// Root returns the root span, or nil on a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Spans returns a snapshot of every span recorded so far, in creation
// order (root first).
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Span is one timed stage. A nil *Span is the disabled path: every
// method no-ops and Child returns nil, so instrumentation threads
// spans without nil checks at call sites.
type Span struct {
	trace  *Trace
	parent *Span
	id     int
	name   string
	label  string

	start time.Duration // offset from trace start
	dur   time.Duration // valid once done
	done  bool

	blocks  int64
	txs     int64
	bytes   int64
	workers int64
	busy    atomic.Int64 // nanoseconds of worker busy time
}

// Child starts a sub-span. Safe to call from any goroutine.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.trace
	c := &Span{trace: t, parent: s, name: name, start: time.Since(t.start)}
	t.mu.Lock()
	c.id = len(t.spans) + 1
	t.spans = append(t.spans, c)
	t.mu.Unlock()
	if t.OnSpanStart != nil {
		t.OnSpanStart(c)
	}
	return c
}

// End stops the span's clock. Ending twice is a no-op. Must be called
// by the goroutine that owns the span, before its parent ends.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.dur = time.Since(s.trace.start) - s.start
	s.done = true
	if s.trace.OnSpanEnd != nil {
		s.trace.OnSpanEnd(s)
	}
}

// SetBlocks records how many blocks the stage processed.
func (s *Span) SetBlocks(n int) {
	if s != nil {
		s.blocks = int64(n)
	}
}

// SetTxs records how many transactions (or detections) the stage processed.
func (s *Span) SetTxs(n int) {
	if s != nil {
		s.txs = int64(n)
	}
}

// SetBytes records how many on-disk bytes the stage read or wrote.
func (s *Span) SetBytes(n int64) {
	if s != nil {
		s.bytes = n
	}
}

// SetWorkers records the size of the worker pool the stage fanned out to.
func (s *Span) SetWorkers(n int) {
	if s != nil {
		s.workers = int64(n)
	}
}

// SetLabel attaches a short free-form detail (a month, an artifact name).
func (s *Span) SetLabel(label string) {
	if s != nil {
		s.label = label
	}
}

// AddBusy accumulates worker busy time. Safe from any goroutine.
func (s *Span) AddBusy(d time.Duration) {
	if s != nil {
		s.busy.Add(int64(d))
	}
}

// Name returns the stage name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Label returns the free-form detail ("" on nil).
func (s *Span) Label() string {
	if s == nil {
		return ""
	}
	return s.label
}

// Parent returns the parent span (nil for the root or a nil span).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Blocks returns the recorded block count.
func (s *Span) Blocks() int64 {
	if s == nil {
		return 0
	}
	return s.blocks
}

// Txs returns the recorded transaction count.
func (s *Span) Txs() int64 {
	if s == nil {
		return 0
	}
	return s.txs
}

// Bytes returns the recorded byte count.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes
}

// Workers returns the recorded pool size (0 if the stage is not a pool).
func (s *Span) Workers() int {
	if s == nil {
		return 0
	}
	return int(s.workers)
}

// Busy returns the accumulated worker busy time.
func (s *Span) Busy() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.busy.Load())
}

// Start returns the span's start offset from the trace start.
func (s *Span) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// Duration returns the span's wall time. For a span that has not ended
// it returns the elapsed time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if !s.done {
		return time.Since(s.trace.start) - s.start
	}
	return s.dur
}

// Utilization reports busy/(wall×workers) for pool spans, clamped to
// [0, 1]; it returns 0 for spans that did not fan out to a pool.
func (s *Span) Utilization() float64 {
	if s == nil || s.workers <= 0 {
		return 0
	}
	wall := s.Duration()
	if wall <= 0 {
		return 0
	}
	u := float64(s.busy.Load()) / (float64(wall) * float64(s.workers))
	if u > 1 {
		u = 1 // clock granularity can nudge busy past wall×workers
	}
	return u
}

// depth returns the number of ancestors (0 for the root).
func (s *Span) depth() int {
	d := 0
	for p := s.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// isAncestor reports whether a is an ancestor of s.
func (s *Span) isAncestor(a *Span) bool {
	for p := s.parent; p != nil; p = p.parent {
		if p == a {
			return true
		}
	}
	return false
}
