// Package prices is the CoinGecko substitute: historical token→ETH price
// series the profit computation uses to convert token gains into ether
// (§3.1.2 and §3.1.3 of the paper convert arbitrage and liquidation gains
// via the CoinGecko API).
//
// The simulation records a price point per token whenever oracle or pool
// prices move; lookups return the last price at or before a block height.
package prices

import (
	"fmt"
	"sort"

	"mevscope/internal/types"
)

// Point is one historical price observation.
type Point struct {
	Block uint64
	// Price is ETH (Amount base units) per whole token.
	Price types.Amount
}

// Series holds block-indexed price history per token.
type Series struct {
	hist map[types.Address][]Point
}

// NewSeries creates an empty price history.
func NewSeries() *Series {
	return &Series{hist: make(map[types.Address][]Point)}
}

// Record appends a price observation. Observations must be recorded in
// non-decreasing block order per token; a same-block update overwrites.
func (s *Series) Record(token types.Address, block uint64, price types.Amount) {
	h := s.hist[token]
	if n := len(h); n > 0 && h[n-1].Block == block {
		h[n-1].Price = price
		return
	}
	s.hist[token] = append(h, Point{Block: block, Price: price})
}

// At returns the token price in effect at the given block: the most recent
// observation at or before it.
func (s *Series) At(token types.Address, block uint64) (types.Amount, bool) {
	h := s.hist[token]
	if len(h) == 0 {
		return 0, false
	}
	i := sort.Search(len(h), func(i int) bool { return h[i].Block > block })
	if i == 0 {
		return 0, false
	}
	return h[i-1].Price, true
}

// Latest returns the most recent price for a token.
func (s *Series) Latest(token types.Address) (types.Amount, bool) {
	h := s.hist[token]
	if len(h) == 0 {
		return 0, false
	}
	return h[len(h)-1].Price, true
}

// ValueInETH converts a token amount to ETH at the price in effect at
// block. Unknown tokens return (0, false).
func (s *Series) ValueInETH(token types.Address, amount types.Amount, block uint64) (types.Amount, bool) {
	p, ok := s.At(token, block)
	if !ok {
		return 0, false
	}
	return amount.MulDiv(p, types.Ether), true
}

// Tokens lists all tokens with history.
func (s *Series) Tokens() []types.Address {
	out := make([]types.Address, 0, len(s.hist))
	for t := range s.hist {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// History returns the full series for one token.
func (s *Series) History(token types.Address) []Point {
	h := s.hist[token]
	out := make([]Point, len(h))
	copy(out, h)
	return out
}

// Restore installs a token's full history in one call — how
// internal/archive rebuilds the series from disk. Points must be in
// ascending block order; out-of-order input is rejected so a corrupted
// archive cannot silently skew lookups.
func (s *Series) Restore(token types.Address, points []Point) error {
	for i := 1; i < len(points); i++ {
		if points[i].Block <= points[i-1].Block {
			return fmt.Errorf("prices: history for %v not ascending at index %d", token.Short(), i)
		}
	}
	h := make([]Point, len(points))
	copy(h, points)
	s.hist[token] = h
	return nil
}
