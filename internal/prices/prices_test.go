package prices

import (
	"testing"

	"mevscope/internal/types"
)

func tok(i uint64) types.Address { return types.DeriveAddress("price", i) }

func TestRecordAndAt(t *testing.T) {
	s := NewSeries()
	s.Record(tok(1), 100, types.Ether/2000)
	s.Record(tok(1), 200, types.Ether/1000)

	if _, ok := s.At(tok(1), 50); ok {
		t.Error("before first observation should miss")
	}
	if p, ok := s.At(tok(1), 100); !ok || p != types.Ether/2000 {
		t.Errorf("at 100 = %v %v", p, ok)
	}
	if p, ok := s.At(tok(1), 150); !ok || p != types.Ether/2000 {
		t.Errorf("at 150 = %v %v", p, ok)
	}
	if p, ok := s.At(tok(1), 999); !ok || p != types.Ether/1000 {
		t.Errorf("at 999 = %v %v", p, ok)
	}
	if _, ok := s.At(tok(2), 100); ok {
		t.Error("unknown token")
	}
}

func TestSameBlockOverwrite(t *testing.T) {
	s := NewSeries()
	s.Record(tok(1), 100, 1)
	s.Record(tok(1), 100, 2)
	if p, _ := s.At(tok(1), 100); p != 2 {
		t.Errorf("overwrite = %v", p)
	}
	if len(s.History(tok(1))) != 1 {
		t.Error("history length")
	}
}

func TestLatest(t *testing.T) {
	s := NewSeries()
	if _, ok := s.Latest(tok(1)); ok {
		t.Error("empty latest")
	}
	s.Record(tok(1), 10, 5)
	s.Record(tok(1), 20, 7)
	if p, ok := s.Latest(tok(1)); !ok || p != 7 {
		t.Errorf("latest = %v", p)
	}
}

func TestValueInETH(t *testing.T) {
	s := NewSeries()
	dai := tok(1)
	s.Record(dai, 100, types.Ether/2000) // 2000 DAI per ETH
	v, ok := s.ValueInETH(dai, 4000*types.Ether, 150)
	if !ok || v != 2*types.Ether {
		t.Errorf("value = %v %v", v, ok)
	}
	if _, ok := s.ValueInETH(tok(9), 1, 100); ok {
		t.Error("unknown token value")
	}
}

func TestTokensSorted(t *testing.T) {
	s := NewSeries()
	s.Record(tok(3), 1, 1)
	s.Record(tok(1), 1, 1)
	s.Record(tok(2), 1, 1)
	toks := s.Tokens()
	if len(toks) != 3 {
		t.Fatal("count")
	}
	for i := 1; i < len(toks); i++ {
		a, b := toks[i-1], toks[i]
		less := false
		for k := range a {
			if a[k] != b[k] {
				less = a[k] < b[k]
				break
			}
		}
		if !less {
			t.Fatal("not sorted")
		}
	}
}
