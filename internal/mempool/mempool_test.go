package mempool

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mevscope/internal/types"
)

func tx(nonce uint64, price types.Amount) *types.Transaction {
	return &types.Transaction{Nonce: nonce, From: types.DeriveAddress("mp", 1), GasPrice: price}
}

func TestAddDuplicate(t *testing.T) {
	p := New()
	a := tx(1, 10)
	if !p.Add(a) {
		t.Error("first add")
	}
	if p.Add(a) {
		t.Error("duplicate add should be rejected")
	}
	if p.Len() != 1 {
		t.Error("len")
	}
	if !p.Contains(a.Hash()) {
		t.Error("contains")
	}
	if got, ok := p.Get(a.Hash()); !ok || got != a {
		t.Error("get")
	}
}

func TestRemove(t *testing.T) {
	p := New()
	a := tx(1, 10)
	p.Add(a)
	if !p.Remove(a.Hash()) {
		t.Error("remove present")
	}
	if p.Remove(a.Hash()) {
		t.Error("remove absent should be false")
	}
	if p.Len() != 0 || p.Contains(a.Hash()) {
		t.Error("state after remove")
	}
	if p.PopBest() != nil {
		t.Error("pop on empty")
	}
}

func TestBestOrdering(t *testing.T) {
	p := New()
	p.Add(tx(1, 10))
	p.Add(tx(2, 30))
	p.Add(tx(3, 20))
	best := p.Best(2)
	if len(best) != 2 || best[0].GasPrice != 30 || best[1].GasPrice != 20 {
		t.Errorf("best = %v", best)
	}
	// Best does not remove.
	if p.Len() != 3 {
		t.Error("Best must not remove")
	}
}

func TestBestTiebreakByArrival(t *testing.T) {
	p := New()
	first := tx(1, 10)
	second := tx(2, 10)
	p.Add(first)
	p.Add(second)
	best := p.Best(2)
	if best[0] != first || best[1] != second {
		t.Error("equal prices should order by arrival")
	}
}

func TestPopBestDrainsInOrder(t *testing.T) {
	p := New()
	prices := []types.Amount{5, 50, 20, 40, 10}
	for i, pr := range prices {
		p.Add(tx(uint64(i), pr))
	}
	var got []types.Amount
	for {
		x := p.PopBest()
		if x == nil {
			break
		}
		got = append(got, x.GasPrice)
	}
	want := []types.Amount{50, 40, 20, 10, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order = %v", got)
		}
	}
}

func TestPopBestSkipsRemoved(t *testing.T) {
	p := New()
	hi := tx(1, 100)
	lo := tx(2, 1)
	p.Add(hi)
	p.Add(lo)
	p.Remove(hi.Hash())
	if got := p.PopBest(); got != lo {
		t.Error("should skip removed high bidder")
	}
}

func TestSubscribe(t *testing.T) {
	p := New()
	var seen []types.Hash
	p.Subscribe(func(tx *types.Transaction) { seen = append(seen, tx.Hash()) })
	a, b := tx(1, 10), tx(2, 20)
	p.Add(a)
	p.Add(b)
	p.Add(a) // duplicate: no notification
	if len(seen) != 2 || seen[0] != a.Hash() || seen[1] != b.Hash() {
		t.Errorf("seen = %v", seen)
	}
}

func TestAllArrivalOrder(t *testing.T) {
	p := New()
	a, b, c := tx(1, 30), tx(2, 10), tx(3, 20)
	p.Add(a)
	p.Add(b)
	p.Add(c)
	all := p.All()
	if len(all) != 3 || all[0] != a || all[1] != b || all[2] != c {
		t.Error("All should preserve arrival order")
	}
}

func TestFilter(t *testing.T) {
	p := New()
	p.Add(tx(1, 10))
	p.Add(tx(2, 100))
	p.Add(tx(3, 200))
	got := p.Filter(func(tx *types.Transaction) bool { return tx.GasPrice >= 100 })
	if len(got) != 2 {
		t.Errorf("filter = %d", len(got))
	}
}

// Property: PopBest always yields a non-increasing price sequence and
// returns exactly the non-removed transactions.
func TestPopBestProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New()
		var added []*types.Transaction
		for i := 0; i < int(n); i++ {
			x := tx(uint64(i), types.Amount(rng.Intn(50)))
			p.Add(x)
			added = append(added, x)
		}
		removed := map[types.Hash]bool{}
		for _, x := range added {
			if rng.Intn(3) == 0 {
				p.Remove(x.Hash())
				removed[x.Hash()] = true
			}
		}
		last := types.Amount(1 << 60)
		count := 0
		for {
			x := p.PopBest()
			if x == nil {
				break
			}
			if removed[x.Hash()] {
				return false
			}
			if x.BidPrice() > last {
				return false
			}
			last = x.BidPrice()
			count++
		}
		return count == len(added)-len(removed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
