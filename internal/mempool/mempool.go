// Package mempool implements the public pending-transaction pool: a
// fee-ordered set of transactions waiting for inclusion, with subscription
// hooks analogous to web3.eth.subscribe("pendingTransactions") that the
// measurement observer and searcher agents rely on.
//
// Like a real node's mempool it offers no consistency guarantees — only
// "currently pending" plus notifications of arrivals.
package mempool

import (
	"container/heap"
	"sort"

	"mevscope/internal/types"
)

// Listener receives newly admitted pending transactions.
type Listener func(tx *types.Transaction)

// Pool is a fee-ordered pending transaction pool. The zero value is not
// usable; call New.
type Pool struct {
	byHash    map[types.Hash]*item
	pq        priorityQueue
	listeners []Listener
	seq       uint64 // arrival order tiebreaker
}

type item struct {
	tx    *types.Transaction
	seq   uint64
	index int // heap index, -1 once removed
}

// New creates an empty pool.
func New() *Pool {
	return &Pool{byHash: make(map[types.Hash]*item)}
}

// Subscribe registers a listener invoked synchronously for every future Add.
func (p *Pool) Subscribe(l Listener) { p.listeners = append(p.listeners, l) }

// Add admits a transaction; duplicates (by hash) are ignored. Returns true
// if the transaction was newly admitted.
func (p *Pool) Add(tx *types.Transaction) bool {
	h := tx.Hash()
	if _, dup := p.byHash[h]; dup {
		return false
	}
	it := &item{tx: tx, seq: p.seq}
	p.seq++
	p.byHash[h] = it
	heap.Push(&p.pq, it)
	for _, l := range p.listeners {
		l(tx)
	}
	return true
}

// Remove drops a transaction (after inclusion in a block). Returns true if
// it was present.
func (p *Pool) Remove(h types.Hash) bool {
	it, ok := p.byHash[h]
	if !ok {
		return false
	}
	delete(p.byHash, h)
	if it.index >= 0 {
		heap.Remove(&p.pq, it.index)
	}
	return true
}

// Contains reports whether the transaction is pending.
func (p *Pool) Contains(h types.Hash) bool {
	_, ok := p.byHash[h]
	return ok
}

// Get returns a pending transaction by hash.
func (p *Pool) Get(h types.Hash) (*types.Transaction, bool) {
	it, ok := p.byHash[h]
	if !ok {
		return nil, false
	}
	return it.tx, true
}

// Len is the number of pending transactions.
func (p *Pool) Len() int { return len(p.byHash) }

// Best returns up to n transactions in descending bid-price order without
// removing them — the default block-building view ("sort pending
// transactions by fees").
func (p *Pool) Best(n int) []*types.Transaction {
	out := make([]*types.Transaction, 0, min(n, len(p.byHash)))
	for _, it := range p.byHash {
		out = append(out, it.tx)
	}
	sort.SliceStable(out, func(i, j int) bool {
		bi, bj := out[i].BidPrice(), out[j].BidPrice()
		if bi != bj {
			return bi > bj
		}
		return p.byHash[out[i].Hash()].seq < p.byHash[out[j].Hash()].seq
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// PopBest removes and returns the highest-bidding transaction, or nil if
// the pool is empty.
func (p *Pool) PopBest() *types.Transaction {
	for p.pq.Len() > 0 {
		it := heap.Pop(&p.pq).(*item)
		if _, live := p.byHash[it.tx.Hash()]; !live {
			continue // lazily discarded
		}
		delete(p.byHash, it.tx.Hash())
		return it.tx
	}
	return nil
}

// All returns every pending transaction in arrival order.
func (p *Pool) All() []*types.Transaction {
	items := make([]*item, 0, len(p.byHash))
	for _, it := range p.byHash {
		items = append(items, it)
	}
	//lint:ignore unstablesort seq is a unique per-insertion sequence number
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
	out := make([]*types.Transaction, len(items))
	for i, it := range items {
		out[i] = it.tx
	}
	return out
}

// Filter returns pending transactions matching pred, in arrival order.
func (p *Pool) Filter(pred func(*types.Transaction) bool) []*types.Transaction {
	var out []*types.Transaction
	for _, tx := range p.All() {
		if pred(tx) {
			out = append(out, tx)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// priorityQueue is a max-heap on (BidPrice, -seq).
type priorityQueue []*item

func (q priorityQueue) Len() int { return len(q) }

func (q priorityQueue) Less(i, j int) bool {
	bi, bj := q[i].tx.BidPrice(), q[j].tx.BidPrice()
	if bi != bj {
		return bi > bj
	}
	return q[i].seq < q[j].seq
}

func (q priorityQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *priorityQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *priorityQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}
