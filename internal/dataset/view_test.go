package dataset_test

import (
	"strings"
	"testing"

	"mevscope/internal/dataset"
	"mevscope/internal/p2p"
	"mevscope/internal/types"
)

func vantage(node int, hashes ...byte) *p2p.Observer {
	recs := make([]p2p.ObservedTx, len(hashes))
	for i, b := range hashes {
		recs[i] = p2p.ObservedTx{Hash: types.Hash{b}, FirstSeenBlock: 100 + uint64(i)}
	}
	return p2p.RestoreVantage(node, recs, 100, 200)
}

func TestCheckView(t *testing.T) {
	for _, ok := range []string{"", "union", "quorum:2", "vantage:0", "Vantage:3", " UNION "} {
		if err := dataset.CheckView(ok); err != nil {
			t.Errorf("CheckView(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"all", "quorum:0", "quorum:x", "vantage:-1", "vantage:", "union:2"} {
		if err := dataset.CheckView(bad); err == nil {
			t.Errorf("CheckView(%q) accepted", bad)
		}
	}
	// Bounded check: indices and quorums beyond the vantage count fail.
	if err := dataset.CheckViewFor("vantage:2", 2); err == nil {
		t.Error("vantage:2 accepted for a 2-vantage dataset")
	}
	if err := dataset.CheckViewFor("quorum:3", 2); err == nil {
		t.Error("quorum:3 accepted for a 2-vantage dataset")
	}
	if err := dataset.CheckViewFor("vantage:1", 2); err != nil {
		t.Errorf("vantage:1 rejected for a 2-vantage dataset: %v", err)
	}
}

func TestResolveView(t *testing.T) {
	a, b := vantage(0, 1, 2), vantage(50, 2, 3)
	ds := &dataset.Dataset{Observer: a, Vantages: []*p2p.Observer{a, b}}

	h := func(i byte) types.Hash { return types.Hash{i} }
	cases := []struct {
		view      string
		seen1     bool // h(1): only vantage 0
		seen3     bool // h(3): only vantage 1
		wantCount int
	}{
		{"", true, false, 2},
		{"vantage:0", true, false, 2},
		{"vantage:1", false, true, 2},
		{"union", true, true, 3},
		{"quorum:2", false, false, 1},
	}
	for _, tc := range cases {
		ds.View = tc.view
		v, err := ds.ResolveView()
		if err != nil {
			t.Fatalf("view %q: %v", tc.view, err)
		}
		if v.Seen(h(1)) != tc.seen1 || v.Seen(h(3)) != tc.seen3 || !v.Seen(h(2)) {
			t.Errorf("view %q: seen(h1)=%v seen(h3)=%v", tc.view, v.Seen(h(1)), v.Seen(h(3)))
		}
		if v.Count() != tc.wantCount {
			t.Errorf("view %q: count = %d, want %d", tc.view, v.Count(), tc.wantCount)
		}
	}

	// Out-of-range selections error with the real vantage range.
	ds.View = "vantage:2"
	if _, err := ds.ResolveView(); err == nil || !strings.Contains(err.Error(), "0..1") {
		t.Errorf("vantage:2 error = %v, want the 0..1 range named", err)
	}

	// No capture at all: nil view, no error — §6 sections skip.
	empty := &dataset.Dataset{}
	if v, err := empty.ResolveView(); v != nil || err != nil {
		t.Errorf("empty dataset view = %v, %v", v, err)
	}
	// ... but a typo'd spec still surfaces.
	empty.View = "bogus"
	if _, err := empty.ResolveView(); err == nil {
		t.Error("bogus view accepted on an observer-less dataset")
	}
}

// TestPartitionCarriesVantageLogs: per-month segments split every
// vantage's log, and every segment carries the same ObservedV arity.
func TestPartitionCarriesVantageLogs(t *testing.T) {
	s := runSim(t, 29, 30, 0)
	ds := dataset.FromSim(s)
	if len(ds.Vantages) != 1 {
		t.Fatalf("baseline world has %d vantages, want 1", len(ds.Vantages))
	}
	// Synthesize a second vantage so the partition has something to split.
	rec := p2p.ObservedTx{Hash: types.Hash{9}, FirstSeenBlock: s.Chain.Head().Header.Number}
	extra := p2p.RestoreVantage(42, []p2p.ObservedTx{rec}, 100, 0)
	ds.Vantages = append(ds.Vantages, extra)

	segs := dataset.Partition(ds)
	total, extraTotal := 0, 0
	for _, seg := range segs {
		if len(seg.ObservedV) != 1 {
			t.Fatalf("segment %s has %d extra logs, want 1", seg.Month.Label(), len(seg.ObservedV))
		}
		total += len(seg.Observed)
		extraTotal += len(seg.ObservedV[0])
	}
	if total != ds.Vantages[0].Count() {
		t.Errorf("segments hold %d primary records, vantage has %d", total, ds.Vantages[0].Count())
	}
	if extraTotal != 1 {
		t.Errorf("segments hold %d extra-vantage records, want 1", extraTotal)
	}
}
