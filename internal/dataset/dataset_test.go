package dataset_test

import (
	"testing"

	"mevscope"
	"mevscope/internal/dataset"
	"mevscope/internal/flashbots"
	"mevscope/internal/scenario"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// runSim simulates a baseline world at the given scale.
func runSim(t *testing.T, seed int64, bpm uint64, months int) *sim.Sim {
	t.Helper()
	sc, err := scenario.MustLookup("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(scenario.Params{Seed: seed, BlocksPerMonth: bpm, Months: months})
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFromSimFields: the dataset is a view over the simulation's live
// structures — same chain, same price series, same WETH anchor — and the
// precomputed FBSet matches both the relay's and a rebuild from the
// block records.
func TestFromSimFields(t *testing.T) {
	s := runSim(t, 11, 40, 0)
	ds := dataset.FromSim(s)

	if ds.Chain != s.Chain {
		t.Error("Chain is not the simulation's chain (want a view, not a copy)")
	}
	if ds.Prices != s.Prices {
		t.Error("Prices is not the simulation's series")
	}
	if ds.WETH != s.World.WETH {
		t.Errorf("WETH = %v, want %v", ds.WETH, s.World.WETH)
	}
	if got, want := len(ds.FBBlocks), len(s.Relay.Blocks()); got != want {
		t.Errorf("FBBlocks = %d records, relay has %d", got, want)
	}
	if len(ds.FBBlocks) == 0 {
		t.Fatal("full-window baseline run produced no Flashbots blocks")
	}
	relaySet := s.Relay.FlashbotsTxSet()
	if len(ds.FBSet) != len(relaySet) {
		t.Fatalf("FBSet has %d entries, relay set %d", len(ds.FBSet), len(relaySet))
	}
	for h, bt := range relaySet {
		if ds.FBSet[h] != bt {
			t.Fatalf("FBSet[%v] = %v, relay says %v", h.Short(), ds.FBSet[h], bt)
		}
	}
	rebuilt := dataset.FBSetOf(ds.FBBlocks)
	if len(rebuilt) != len(ds.FBSet) {
		t.Fatalf("FBSetOf rebuilds %d entries, dataset carries %d", len(rebuilt), len(ds.FBSet))
	}
	for h, bt := range ds.FBSet {
		if rebuilt[h] != bt {
			t.Fatalf("FBSetOf[%v] = %v, dataset says %v", h.Short(), rebuilt[h], bt)
		}
	}
}

// TestFromSimObserverWindow: the observer is nil when the run ends
// before the observation window opens, and live once it has — the
// condition Figure 9 and the §6 inference key off.
func TestFromSimObserverWindow(t *testing.T) {
	early := dataset.FromSim(runSim(t, 11, 20, int(types.ObservationStartMonth)))
	if early.Observer != nil {
		t.Errorf("run of %d months has an observer; the window opens at month %d",
			types.ObservationStartMonth, types.ObservationStartMonth)
	}
	full := dataset.FromSim(runSim(t, 11, 20, 0))
	if full.Observer == nil {
		t.Fatal("full-window run has no observer")
	}
	if full.Observer.Count() == 0 {
		t.Error("observer recorded no pending transactions")
	}
}

// TestAnalyzeDatasetNilObserver: a dataset without an observer analyzes
// cleanly and simply skips the observation-window artifacts.
func TestAnalyzeDatasetNilObserver(t *testing.T) {
	ds := dataset.FromSim(runSim(t, 11, 20, 6))
	if ds.Observer != nil {
		t.Fatal("expected nil observer at 6 months")
	}
	st, err := mevscope.AnalyzeDataset(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Report.Fig9 != nil || st.Report.MEVSplit != nil || st.Inferrer != nil {
		t.Error("observation-window artifacts present without an observer")
	}
	if st.Report.Table1.Total.Extractions == 0 {
		t.Error("no extractions measured")
	}
}

// TestAnalyzeDatasetRejectsEmpty: a dataset with no blocks (nil or
// empty chain) is refused up front.
func TestAnalyzeDatasetRejectsEmpty(t *testing.T) {
	if _, err := mevscope.AnalyzeDataset(&dataset.Dataset{}, 1); err == nil {
		t.Error("nil chain accepted")
	}
}

// TestFBSetOfEmpty: no records yield an empty, non-nil set.
func TestFBSetOfEmpty(t *testing.T) {
	set := dataset.FBSetOf(nil)
	if set == nil || len(set) != 0 {
		t.Errorf("FBSetOf(nil) = %v", set)
	}
	set = dataset.FBSetOf([]flashbots.BlockRecord{})
	if set == nil || len(set) != 0 {
		t.Errorf("FBSetOf(empty) = %v", set)
	}
}
