package dataset

// View selection: which combination of the dataset's observation
// vantages the §6 private-transaction inference classifies against. The
// spec grammar is shared by mevscope.Options.View, the `?view=` query
// parameter of `mevscope serve` and the scenario registry:
//
//	""           the primary vantage (the paper's single observer)
//	"vantage:N"  vantage N alone
//	"union"      seen by any vantage
//	"quorum:K"   seen by at least K vantages

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mevscope/internal/p2p"
)

// view specs.
const (
	viewUnion   = "union"
	viewQuorum  = "quorum"
	viewVantage = "vantage"
)

// parsedView is a decoded view spec.
type parsedView struct {
	kind string // "", viewUnion, viewQuorum or viewVantage
	n    int    // quorum K or vantage index
}

// parseView decodes a view spec, bounds-checking indices against the
// given vantage count (pass math.MaxInt to check syntax only).
func parseView(spec string, vantages int) (parsedView, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	switch {
	case s == "":
		return parsedView{}, nil
	case s == viewUnion:
		return parsedView{kind: viewUnion}, nil
	case strings.HasPrefix(s, viewQuorum+":"):
		k, err := strconv.Atoi(s[len(viewQuorum)+1:])
		if err != nil || k < 1 {
			return parsedView{}, fmt.Errorf("dataset: bad view %q (want quorum:K with K ≥ 1)", spec)
		}
		if k > vantages {
			return parsedView{}, fmt.Errorf("dataset: view %q needs %d vantages, the dataset has %d", spec, k, vantages)
		}
		return parsedView{kind: viewQuorum, n: k}, nil
	case strings.HasPrefix(s, viewVantage+":"):
		i, err := strconv.Atoi(s[len(viewVantage)+1:])
		if err != nil || i < 0 {
			return parsedView{}, fmt.Errorf("dataset: bad view %q (want vantage:N with N ≥ 0)", spec)
		}
		if i >= vantages {
			return parsedView{}, fmt.Errorf("dataset: view %q selects vantage %d, the dataset has vantages 0..%d", spec, i, vantages-1)
		}
		return parsedView{kind: viewVantage, n: i}, nil
	}
	return parsedView{}, fmt.Errorf("dataset: unknown view %q (want union, quorum:K or vantage:N)", spec)
}

// CheckView validates a view spec's syntax without a dataset at hand.
func CheckView(spec string) error {
	_, err := parseView(spec, math.MaxInt)
	return err
}

// CheckViewFor validates a view spec against a known vantage count —
// what `mevscope serve` runs before touching any data file, so a bad
// ?view= is a 400 with the real vantage range, not a failed analysis.
func CheckViewFor(spec string, vantages int) error {
	if vantages < 1 {
		vantages = 1
	}
	_, err := parseView(spec, vantages)
	return err
}

// ResolveView materializes the dataset's selected observation view. It
// returns nil (and no error) when the dataset has no observation capture
// at all — the §6 sections are then skipped, exactly like the nil
// Observer always behaved.
func (ds *Dataset) ResolveView() (p2p.RecordView, error) {
	vs := ds.VantageList()
	if len(vs) == 0 {
		if ds.View != "" {
			// Validate the spec anyway so a typo is surfaced even on runs
			// whose window never opened.
			if err := CheckView(ds.View); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	pv, err := parseView(ds.View, len(vs))
	if err != nil {
		return nil, err
	}
	switch pv.kind {
	case viewUnion:
		return p2p.Union(vs...), nil
	case viewQuorum:
		return p2p.Quorum(pv.n, vs...), nil
	case viewVantage:
		return vs[pv.n], nil
	default:
		return vs[0], nil
	}
}
