// Package dataset defines the collected-measurement view of one simulated
// world: the artifacts a real study would have on disk — the archive
// node's chain, the observer's pending-transaction capture, the Flashbots
// public blocks API and the historical price series — without the
// simulator that produced them.
//
// The measurement pipeline (mevscope.AnalyzeDataset, internal/stream)
// consumes only this view, which is what makes a world simulate-once,
// analyze-many: internal/archive persists a Dataset to disk and restores
// it bit-compatibly, so `mevscope analyze -from <dir>` reproduces the
// original run's report without re-simulating.
package dataset

import (
	"mevscope/internal/chain"
	"mevscope/internal/flashbots"
	"mevscope/internal/p2p"
	"mevscope/internal/prices"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// Dataset is everything the measurement stage reads.
type Dataset struct {
	// Chain is the full block/receipt history (the archive-node view).
	Chain *chain.Chain
	// FBBlocks is the public Flashbots blocks API, ascending by height.
	FBBlocks []flashbots.BlockRecord
	// FBSet maps every transaction mined inside a bundle to its bundle
	// type — derived from FBBlocks, carried precomputed because every
	// pipeline stage needs it.
	FBSet map[types.Hash]flashbots.BundleType
	// Observer is the pending-transaction capture; nil when the run ended
	// before the observation window opened.
	Observer *p2p.Observer
	// Prices is the CoinGecko-substitute token→ETH series.
	Prices *prices.Series
	// WETH anchors the detectors' buy/sell direction.
	WETH types.Address
}

// FromSim extracts the measurement dataset from a completed (or still
// running) simulation. The returned dataset shares the simulation's live
// structures; it is a view, not a copy.
func FromSim(s *sim.Sim) *Dataset {
	ds := &Dataset{
		Chain:    s.Chain,
		FBBlocks: s.Relay.Blocks(),
		FBSet:    s.Relay.FlashbotsTxSet(),
		Prices:   s.Prices,
		WETH:     s.World.WETH,
	}
	obs := s.Net.Observer()
	if start, _ := obs.Window(); start > 0 || obs.Count() > 0 {
		ds.Observer = obs
	}
	return ds
}

// FBSetOf rebuilds the transaction→bundle-type set from block records —
// what Relay.FlashbotsTxSet computes relay-side, reproduced here for
// datasets restored from disk.
func FBSetOf(records []flashbots.BlockRecord) map[types.Hash]flashbots.BundleType {
	out := make(map[types.Hash]flashbots.BundleType)
	for _, rec := range records {
		for _, tx := range rec.Txs {
			out[tx.Hash] = tx.BundleType
		}
	}
	return out
}
