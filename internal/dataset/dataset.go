// Package dataset defines the collected-measurement view of one simulated
// world: the artifacts a real study would have on disk — the archive
// node's chain, the observer's pending-transaction capture, the Flashbots
// public blocks API and the historical price series — without the
// simulator that produced them.
//
// The measurement pipeline (mevscope.AnalyzeDataset, internal/stream)
// consumes only this view, which is what makes a world simulate-once,
// analyze-many: internal/archive persists a Dataset to disk and restores
// it bit-compatibly, so `mevscope analyze -from <dir>` reproduces the
// original run's report without re-simulating.
package dataset

import (
	"fmt"

	"mevscope/internal/chain"
	"mevscope/internal/flashbots"
	"mevscope/internal/p2p"
	"mevscope/internal/prices"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// Dataset is everything the measurement stage reads.
type Dataset struct {
	// Chain is the full block/receipt history (the archive-node view).
	Chain *chain.Chain
	// FBBlocks is the public Flashbots blocks API, ascending by height.
	FBBlocks []flashbots.BlockRecord
	// FBSet maps every transaction mined inside a bundle to its bundle
	// type — derived from FBBlocks, carried precomputed because every
	// pipeline stage needs it.
	FBSet map[types.Hash]flashbots.BundleType
	// Observer is the primary pending-transaction capture (the paper's
	// single vantage); nil when the run ended before the observation
	// window opened.
	Observer *p2p.Observer
	// Vantages are the per-vantage observation logs of the whole
	// observation network, in configuration order; Vantages[0] is
	// Observer when both are set. Empty for single-vantage datasets
	// restored from legacy archives (Observer then stands alone).
	Vantages []*p2p.Observer
	// View names the observation view the §6 inference classifies
	// against: "" or "vantage:0" for the primary vantage, "vantage:N",
	// "union", or "quorum:K". See ResolveView.
	View string
	// Prices is the CoinGecko-substitute token→ETH series.
	Prices *prices.Series
	// WETH anchors the detectors' buy/sell direction.
	WETH types.Address
	// Projection, when non-empty, lists the archive columns this dataset
	// was restored with (sorted) — a column-projected read populated only
	// those fields, so full-pipeline analyses must refuse it and
	// projection-aware builders must check their columns are covered.
	// Empty means a complete dataset.
	Projection []string
}

// FromSim extracts the measurement dataset from a completed (or still
// running) simulation. The returned dataset shares the simulation's live
// structures; it is a view, not a copy.
func FromSim(s *sim.Sim) *Dataset {
	ds := &Dataset{
		Chain:    s.Chain,
		FBBlocks: s.Relay.Blocks(),
		FBSet:    s.Relay.FlashbotsTxSet(),
		Prices:   s.Prices,
		WETH:     s.World.WETH,
	}
	obs := s.Net.Observer()
	if start, _ := obs.Window(); start > 0 || obs.Count() > 0 {
		ds.Observer = obs
		ds.Vantages = s.Net.Vantages()
	}
	return ds
}

// VantageList resolves the dataset's vantage set: the explicit Vantages
// when present, else the lone Observer, else nil.
func (ds *Dataset) VantageList() []*p2p.Observer {
	if len(ds.Vantages) > 0 {
		return ds.Vantages
	}
	if ds.Observer != nil {
		return []*p2p.Observer{ds.Observer}
	}
	return nil
}

// FBSetOf rebuilds the transaction→bundle-type set from block records —
// what Relay.FlashbotsTxSet computes relay-side, reproduced here for
// datasets restored from disk.
func FBSetOf(records []flashbots.BlockRecord) map[types.Hash]flashbots.BundleType {
	out := make(map[types.Hash]flashbots.BundleType)
	for _, rec := range records {
		for _, tx := range rec.Txs {
			out[tx.Hash] = tx.BundleType
		}
	}
	return out
}

// Segment is one study month's partition of a dataset: the blocks mined
// in that month, the Flashbots API records for them, and the pending
// transactions first observed during it. It is the unit the archive
// persists, the streaming follower rotates to disk, and the query layer
// caches — a month materializes at most once per process, however many
// overlapping ranges ask for it.
//
// A Segment is immutable once built (blocks are sealed, hashes cached),
// so one decoded segment is safely shared across concurrent readers and
// assembled into any number of datasets.
type Segment struct {
	Month    types.Month
	Blocks   []*types.Block
	FBBlocks []flashbots.BlockRecord
	// Observed is the primary vantage's capture for the month.
	Observed []p2p.ObservedTx
	// ObservedV holds the additional vantages' captures (ObservedV[i] is
	// vantage i+1), one log per vantage like mempool-dumpster's
	// per-source files. Every segment of one dataset has the same length
	// here, so per-vantage logs re-concatenate consistently.
	ObservedV [][]p2p.ObservedTx
}

// Partition splits a dataset into per-month segments in ascending month
// order, skipping months with no blocks. Ordering within a segment is the
// dataset's own (blocks by height, records in capture order), so
// concatenating the segments back reproduces the original sequences.
func Partition(ds *Dataset) []*Segment {
	tl := ds.Chain.Timeline
	vs := ds.VantageList()
	extra := 0
	if len(vs) > 1 {
		extra = len(vs) - 1
	}
	byMonth := map[types.Month]*Segment{}
	get := func(m types.Month) *Segment {
		seg := byMonth[m]
		if seg == nil {
			seg = &Segment{Month: m, ObservedV: make([][]p2p.ObservedTx, extra)}
			byMonth[m] = seg
		}
		return seg
	}
	for _, rec := range ds.FBBlocks {
		seg := get(tl.MonthOfBlock(rec.BlockNumber))
		seg.FBBlocks = append(seg.FBBlocks, rec)
	}
	for vi, v := range vs {
		for _, rec := range v.Records() {
			seg := get(tl.MonthOfBlock(rec.FirstSeenBlock))
			if vi == 0 {
				seg.Observed = append(seg.Observed, rec)
			} else {
				seg.ObservedV[vi-1] = append(seg.ObservedV[vi-1], rec)
			}
		}
	}
	var out []*Segment
	for m := types.Month(0); m < types.StudyMonths; m++ {
		blocks := ds.Chain.BlocksInMonth(m)
		if len(blocks) == 0 {
			continue
		}
		seg := get(m)
		seg.Blocks = blocks
		out = append(out, seg)
	}
	return out
}

// Assemble rebuilds a dataset from contiguous month segments. tl must be
// the archive's timeline re-anchored at the first segment's month (so
// block→month mapping stays aligned with the full archive); prices,
// observer and WETH stay with the caller, which knows where they live.
// The segments are only read, never retained mutable — assembling the
// same cached segments into many datasets is safe.
func Assemble(tl types.Timeline, weth types.Address, segs []*Segment) (*Dataset, error) {
	ds := &Dataset{Chain: chain.New(tl), WETH: weth}
	for _, seg := range segs {
		for _, b := range seg.Blocks {
			if err := ds.Chain.Append(b); err != nil {
				return nil, fmt.Errorf("dataset: segment %s: %w", seg.Month.Label(), err)
			}
		}
		ds.FBBlocks = append(ds.FBBlocks, seg.FBBlocks...)
	}
	ds.FBSet = FBSetOf(ds.FBBlocks)
	return ds, nil
}
