package types

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	a := DeriveAddress("str", 1)
	if !strings.HasPrefix(a.String(), "0x") || len(a.String()) != 42 {
		t.Errorf("address string = %q", a.String())
	}
	if !strings.HasPrefix(a.Short(), "0x") || len(a.Short()) != 10 {
		t.Errorf("address short = %q", a.Short())
	}
	h := HashData([]byte("x"))
	if len(h.String()) != 66 || len(h.Short()) != 10 {
		t.Errorf("hash strings = %q %q", h.String(), h.Short())
	}
	if got := (Ether + Ether/2).String(); got != "1.500000000 ETH" {
		t.Errorf("amount string = %q", got)
	}
	if (2 * Gwei).GweiFloat() != 2 {
		t.Error("gwei float")
	}
}

func TestTxKindStrings(t *testing.T) {
	kinds := map[TxKind]string{
		TxTransfer: "transfer", TxTokenTransfer: "token-transfer",
		TxSwap: "swap", TxMultiSwap: "multi-swap",
		TxLiquidate: "liquidate", TxFlashLoan: "flash-loan",
		TxOracleUpdate: "oracle-update", TxMinerPayout: "miner-payout",
		TxAddLiquidity: "add-liquidity", TxNoop: "noop",
		TxKind(200): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q want %q", k, k.String(), want)
		}
	}
}

func TestResetHash(t *testing.T) {
	tx := &Transaction{Nonce: 1, GasPrice: 5}
	h1 := tx.Hash()
	tx.GasPrice = 10
	tx.ResetHash()
	if tx.Hash() == h1 {
		t.Error("hash should change after mutation + reset")
	}
}

func TestTextMarshalRoundtrip(t *testing.T) {
	a := DeriveAddress("marshal", 1)
	txt, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Address
	if err := back.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Error("address roundtrip")
	}
	if err := back.UnmarshalText([]byte("zz")); err == nil {
		t.Error("bad hex should fail")
	}

	h := HashData([]byte("x"))
	txt, _ = h.MarshalText()
	var hb Hash
	if err := hb.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if hb != h {
		t.Error("hash roundtrip")
	}
	if err := hb.UnmarshalText([]byte("0x1234")); err == nil {
		t.Error("short hash should fail")
	}
}
