package types

import (
	"fmt"
	"strings"
	"time"
)

// The paper's measurement window spans blocks 10,000,000 (May 2020) to
// 14,444,725 (March 2022) — 23 calendar months. The simulation compresses
// each month to a configurable number of blocks but preserves the calendar
// so monthly aggregations line up with the paper's figures.

// Month indexes a calendar month within the study window: 0 = May 2020,
// 22 = March 2022.
type Month int

// Study window constants.
const (
	// StudyMonths is the number of calendar months in the paper's window.
	StudyMonths = 23
	// FlashbotsLaunchMonth is February 2021 (first Flashbots block mined
	// Feb 11th, 2021), as a Month index.
	FlashbotsLaunchMonth Month = 9
	// LondonForkMonth is August 2021 (EIP-1559).
	LondonForkMonth Month = 15
	// BerlinForkMonth is April 2021.
	BerlinForkMonth Month = 11
	// ObservationStartMonth is when the pending-transaction observer starts
	// (November 2021; the paper observed Nov 8th 2021 – Apr 9th 2022).
	ObservationStartMonth Month = 18
	// PrivateWindowStartMonth begins the private-inference analysis window
	// (paper: Nov 23rd 2021 – Mar 23rd 2022).
	PrivateWindowStartMonth Month = 18
)

var studyStart = time.Date(2020, time.May, 1, 0, 0, 0, 0, time.UTC)

// Date returns the first day of the month.
func (m Month) Date() time.Time { return studyStart.AddDate(0, int(m), 0) }

// String renders the month like the paper's x-axis labels, e.g. "2/2021".
func (m Month) String() string {
	t := m.Date()
	return fmt.Sprintf("%d/%d", int(t.Month()), t.Year())
}

// Label renders the month as an ISO-style label, e.g. "2021-03" — the
// form archive segment directories and query parameters use.
func (m Month) Label() string {
	t := m.Date()
	return fmt.Sprintf("%04d-%02d", t.Year(), int(t.Month()))
}

// ParseMonth parses a study month from its Label form ("2021-03") or its
// String form ("3/2021"). Months outside the study window are rejected
// rather than clamped, so callers can surface typos.
func ParseMonth(s string) (Month, error) {
	t, err := time.Parse("2006-01", s)
	if err != nil {
		if t, err = time.Parse("1/2006", s); err != nil {
			return 0, fmt.Errorf("types: bad month %q (want YYYY-MM, e.g. %q)", s, Month(0).Label())
		}
	}
	m := Month((t.Year()-studyStart.Year())*12 + int(t.Month()) - int(studyStart.Month()))
	if m < 0 || m >= StudyMonths {
		return 0, fmt.Errorf("types: month %q outside the study window %s..%s",
			s, Month(0).Label(), Month(StudyMonths-1).Label())
	}
	return m, nil
}

// ParseMonthRange parses an inclusive month range "2021-03..2021-06". A
// single month selects just that month; the empty string selects the full
// study window.
func ParseMonthRange(s string) (from, to Month, err error) {
	if s == "" {
		return 0, StudyMonths - 1, nil
	}
	lo, hi, found := strings.Cut(s, "..")
	if !found {
		hi = lo
	}
	if from, err = ParseMonth(lo); err != nil {
		return 0, 0, err
	}
	if to, err = ParseMonth(hi); err != nil {
		return 0, 0, err
	}
	if to < from {
		return 0, 0, fmt.Errorf("types: month range %q runs backwards", s)
	}
	return from, to, nil
}

// MonthOf maps a timestamp to its study Month. Times before the window
// clamp to 0 and after to StudyMonths-1.
func MonthOf(t time.Time) Month {
	years := t.Year() - studyStart.Year()
	months := int(t.Month()) - int(studyStart.Month())
	m := Month(years*12 + months)
	if m < 0 {
		return 0
	}
	if m >= StudyMonths {
		return StudyMonths - 1
	}
	return m
}

// Timeline maps block numbers to calendar time for a compressed chain.
// BlocksPerMonth blocks are minted per calendar month, evenly spaced.
type Timeline struct {
	// BlocksPerMonth is the compression factor; mainnet has ~190k.
	BlocksPerMonth uint64
	// StartBlock is the number of the first block in the study window.
	StartBlock uint64
	// FirstMonth is the calendar month StartBlock falls in. The default 0
	// starts at May 2020 like the paper; a later month truncates the front
	// of the window (e.g. a post-London-only run) while keeping block→month
	// mapping aligned with the calendar.
	FirstMonth Month
}

// DefaultTimeline compresses each month to the given block count, starting
// at block 10,000,000 like the paper.
func DefaultTimeline(blocksPerMonth uint64) Timeline {
	return Timeline{BlocksPerMonth: blocksPerMonth, StartBlock: 10_000_000}
}

// TimelineFrom starts the window at a later calendar month. The start
// block shifts forward by the skipped months so block numbers line up with
// the full-window timeline at the same compression.
func TimelineFrom(blocksPerMonth uint64, first Month) Timeline {
	if first < 0 {
		first = 0
	}
	if first >= StudyMonths {
		first = StudyMonths - 1
	}
	tl := DefaultTimeline(blocksPerMonth)
	tl.StartBlock += uint64(first) * blocksPerMonth
	tl.FirstMonth = first
	return tl
}

// Months is the number of calendar months the timeline spans.
func (tl Timeline) Months() int { return int(StudyMonths - tl.FirstMonth) }

// TotalBlocks is the number of blocks across the timeline's window.
func (tl Timeline) TotalBlocks() uint64 { return tl.BlocksPerMonth * uint64(tl.Months()) }

// EndBlock is the last block number in the window (inclusive).
func (tl Timeline) EndBlock() uint64 { return tl.StartBlock + tl.TotalBlocks() - 1 }

// MonthOfBlock returns the study Month a block number falls into.
func (tl Timeline) MonthOfBlock(number uint64) Month {
	if number < tl.StartBlock {
		return tl.FirstMonth
	}
	m := tl.FirstMonth + Month((number-tl.StartBlock)/tl.BlocksPerMonth)
	if m >= StudyMonths {
		return StudyMonths - 1
	}
	return m
}

// TimeOfBlock returns the timestamp for a block number: blocks are evenly
// spaced within their month.
func (tl Timeline) TimeOfBlock(number uint64) time.Time {
	m := tl.MonthOfBlock(number)
	start := m.Date()
	end := (m + 1).Date()
	if number < tl.StartBlock {
		return start
	}
	idx := (number - tl.StartBlock) % tl.BlocksPerMonth
	span := end.Sub(start)
	return start.Add(span * time.Duration(idx) / time.Duration(tl.BlocksPerMonth))
}

// FirstBlockOfMonth returns the number of the first block in month m.
// Months before the timeline's first month return 0, which is below any
// real block number, so ranges over them are empty.
func (tl Timeline) FirstBlockOfMonth(m Month) uint64 {
	if m < tl.FirstMonth {
		return 0
	}
	return tl.StartBlock + uint64(m-tl.FirstMonth)*tl.BlocksPerMonth
}

// LondonForkBlock returns the first block with EIP-1559 pricing active.
func (tl Timeline) LondonForkBlock() uint64 { return tl.FirstBlockOfMonth(LondonForkMonth) }

// FlashbotsLaunchBlock returns the first block at which Flashbots bundles
// may be mined.
func (tl Timeline) FlashbotsLaunchBlock() uint64 { return tl.FirstBlockOfMonth(FlashbotsLaunchMonth) }
