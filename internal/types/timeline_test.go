package types

import (
	"testing"
	"time"
)

func TestMonthString(t *testing.T) {
	if got := Month(0).String(); got != "5/2020" {
		t.Errorf("month 0 = %s", got)
	}
	if got := FlashbotsLaunchMonth.String(); got != "2/2021" {
		t.Errorf("flashbots launch = %s", got)
	}
	if got := Month(StudyMonths - 1).String(); got != "3/2022" {
		t.Errorf("last month = %s", got)
	}
	if got := LondonForkMonth.String(); got != "8/2021" {
		t.Errorf("london = %s", got)
	}
	if got := BerlinForkMonth.String(); got != "4/2021" {
		t.Errorf("berlin = %s", got)
	}
}

func TestMonthOf(t *testing.T) {
	if m := MonthOf(time.Date(2021, time.February, 11, 0, 0, 0, 0, time.UTC)); m != FlashbotsLaunchMonth {
		t.Errorf("feb 2021 = %d", m)
	}
	if m := MonthOf(time.Date(2019, time.January, 1, 0, 0, 0, 0, time.UTC)); m != 0 {
		t.Error("clamp low")
	}
	if m := MonthOf(time.Date(2030, time.January, 1, 0, 0, 0, 0, time.UTC)); m != StudyMonths-1 {
		t.Error("clamp high")
	}
}

func TestTimelineBlockMapping(t *testing.T) {
	tl := DefaultTimeline(1000)
	if tl.TotalBlocks() != 23000 {
		t.Errorf("total = %d", tl.TotalBlocks())
	}
	if tl.EndBlock() != 10_000_000+23000-1 {
		t.Errorf("end = %d", tl.EndBlock())
	}
	if m := tl.MonthOfBlock(10_000_000); m != 0 {
		t.Errorf("first block month = %d", m)
	}
	if m := tl.MonthOfBlock(10_000_999); m != 0 {
		t.Errorf("last block of month 0 = %d", m)
	}
	if m := tl.MonthOfBlock(10_001_000); m != 1 {
		t.Errorf("first block of month 1 = %d", m)
	}
	if m := tl.MonthOfBlock(tl.EndBlock() + 5000); m != StudyMonths-1 {
		t.Error("clamp beyond end")
	}
	if m := tl.MonthOfBlock(5); m != 0 {
		t.Error("clamp before start")
	}
}

func TestTimelineTimeMonotonic(t *testing.T) {
	tl := DefaultTimeline(100)
	prev := tl.TimeOfBlock(tl.StartBlock)
	for n := tl.StartBlock + 1; n <= tl.EndBlock(); n += 37 {
		cur := tl.TimeOfBlock(n)
		if !cur.After(prev) {
			t.Fatalf("time not increasing at block %d: %v !> %v", n, cur, prev)
		}
		if MonthOf(cur) != tl.MonthOfBlock(n) {
			t.Fatalf("time/month disagree at block %d", n)
		}
		prev = cur
	}
}

func TestForkBlocks(t *testing.T) {
	tl := DefaultTimeline(500)
	if tl.MonthOfBlock(tl.LondonForkBlock()) != LondonForkMonth {
		t.Error("london fork block in wrong month")
	}
	if tl.MonthOfBlock(tl.LondonForkBlock()-1) != LondonForkMonth-1 {
		t.Error("block before london fork in wrong month")
	}
	if tl.MonthOfBlock(tl.FlashbotsLaunchBlock()) != FlashbotsLaunchMonth {
		t.Error("flashbots launch block in wrong month")
	}
}
