package types

import (
	"testing"
	"time"
)

func TestMonthString(t *testing.T) {
	if got := Month(0).String(); got != "5/2020" {
		t.Errorf("month 0 = %s", got)
	}
	if got := FlashbotsLaunchMonth.String(); got != "2/2021" {
		t.Errorf("flashbots launch = %s", got)
	}
	if got := Month(StudyMonths - 1).String(); got != "3/2022" {
		t.Errorf("last month = %s", got)
	}
	if got := LondonForkMonth.String(); got != "8/2021" {
		t.Errorf("london = %s", got)
	}
	if got := BerlinForkMonth.String(); got != "4/2021" {
		t.Errorf("berlin = %s", got)
	}
}

func TestMonthOf(t *testing.T) {
	if m := MonthOf(time.Date(2021, time.February, 11, 0, 0, 0, 0, time.UTC)); m != FlashbotsLaunchMonth {
		t.Errorf("feb 2021 = %d", m)
	}
	if m := MonthOf(time.Date(2019, time.January, 1, 0, 0, 0, 0, time.UTC)); m != 0 {
		t.Error("clamp low")
	}
	if m := MonthOf(time.Date(2030, time.January, 1, 0, 0, 0, 0, time.UTC)); m != StudyMonths-1 {
		t.Error("clamp high")
	}
}

func TestTimelineBlockMapping(t *testing.T) {
	tl := DefaultTimeline(1000)
	if tl.TotalBlocks() != 23000 {
		t.Errorf("total = %d", tl.TotalBlocks())
	}
	if tl.EndBlock() != 10_000_000+23000-1 {
		t.Errorf("end = %d", tl.EndBlock())
	}
	if m := tl.MonthOfBlock(10_000_000); m != 0 {
		t.Errorf("first block month = %d", m)
	}
	if m := tl.MonthOfBlock(10_000_999); m != 0 {
		t.Errorf("last block of month 0 = %d", m)
	}
	if m := tl.MonthOfBlock(10_001_000); m != 1 {
		t.Errorf("first block of month 1 = %d", m)
	}
	if m := tl.MonthOfBlock(tl.EndBlock() + 5000); m != StudyMonths-1 {
		t.Error("clamp beyond end")
	}
	if m := tl.MonthOfBlock(5); m != 0 {
		t.Error("clamp before start")
	}
}

func TestTimelineTimeMonotonic(t *testing.T) {
	tl := DefaultTimeline(100)
	prev := tl.TimeOfBlock(tl.StartBlock)
	for n := tl.StartBlock + 1; n <= tl.EndBlock(); n += 37 {
		cur := tl.TimeOfBlock(n)
		if !cur.After(prev) {
			t.Fatalf("time not increasing at block %d: %v !> %v", n, cur, prev)
		}
		if MonthOf(cur) != tl.MonthOfBlock(n) {
			t.Fatalf("time/month disagree at block %d", n)
		}
		prev = cur
	}
}

func TestForkBlocks(t *testing.T) {
	tl := DefaultTimeline(500)
	if tl.MonthOfBlock(tl.LondonForkBlock()) != LondonForkMonth {
		t.Error("london fork block in wrong month")
	}
	if tl.MonthOfBlock(tl.LondonForkBlock()-1) != LondonForkMonth-1 {
		t.Error("block before london fork in wrong month")
	}
	if tl.MonthOfBlock(tl.FlashbotsLaunchBlock()) != FlashbotsLaunchMonth {
		t.Error("flashbots launch block in wrong month")
	}
}

// TestMonthLabelRoundTrip: every study month's Label parses back to
// itself, and the String form parses too.
func TestMonthLabelRoundTrip(t *testing.T) {
	for m := Month(0); m < StudyMonths; m++ {
		got, err := ParseMonth(m.Label())
		if err != nil {
			t.Fatalf("ParseMonth(%q): %v", m.Label(), err)
		}
		if got != m {
			t.Fatalf("ParseMonth(%q) = %d, want %d", m.Label(), got, m)
		}
		got, err = ParseMonth(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMonth(%q) = %d, %v; want %d", m.String(), got, err, m)
		}
	}
	if Month(0).Label() != "2020-05" || Month(StudyMonths-1).Label() != "2022-03" {
		t.Errorf("window labels = %s..%s", Month(0).Label(), Month(StudyMonths-1).Label())
	}
}

// TestParseMonthRejectsBadInput: garbage and out-of-window months error.
func TestParseMonthRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "2021", "2021-13", "March 2021", "2020-04", "2022-04", "1998-01"} {
		if _, err := ParseMonth(bad); err == nil {
			t.Errorf("ParseMonth(%q) accepted", bad)
		}
	}
}

// TestParseMonthRange: ranges, single months, the empty full window, and
// inverted ranges.
func TestParseMonthRange(t *testing.T) {
	from, to, err := ParseMonthRange("2021-03..2021-06")
	if err != nil || from != 10 || to != 13 {
		t.Errorf("range = %d..%d, %v", from, to, err)
	}
	from, to, err = ParseMonthRange("2021-03")
	if err != nil || from != 10 || to != 10 {
		t.Errorf("single month = %d..%d, %v", from, to, err)
	}
	from, to, err = ParseMonthRange("")
	if err != nil || from != 0 || to != StudyMonths-1 {
		t.Errorf("empty = %d..%d, %v", from, to, err)
	}
	if _, _, err := ParseMonthRange("2021-06..2021-03"); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := ParseMonthRange("2021-03..nope"); err == nil {
		t.Error("bad end month accepted")
	}
}
