package types

import (
	"encoding/binary"
	"time"
)

// Header carries the consensus fields of a block that the measurement
// pipeline needs: height, timestamp, producer and base fee.
type Header struct {
	Number     uint64
	ParentHash Hash
	Time       time.Time
	Miner      Address
	// BaseFee is zero before the London fork.
	BaseFee  Amount
	GasLimit uint64
	GasUsed  uint64
}

// Block is a sealed set of transactions with their execution receipts.
// Receipts travel with the block because the simulation plays the role of
// an archive node: every historical outcome is queryable.
type Block struct {
	Header   Header
	Txs      []*Transaction
	Receipts []*Receipt

	hash Hash
}

// Seal computes and caches the block hash. Call after the block contents
// are final.
func (b *Block) Seal() {
	var buf [8 + 32 + 8 + 20 + 8]byte
	binary.BigEndian.PutUint64(buf[0:], b.Header.Number)
	copy(buf[8:], b.Header.ParentHash[:])
	binary.BigEndian.PutUint64(buf[40:], uint64(b.Header.Time.Unix()))
	copy(buf[48:], b.Header.Miner[:])
	binary.BigEndian.PutUint64(buf[68:], uint64(b.Header.BaseFee))
	chunks := make([][]byte, 0, 1+len(b.Txs))
	chunks = append(chunks, buf[:])
	for _, tx := range b.Txs {
		h := tx.Hash()
		chunks = append(chunks, h[:])
	}
	b.hash = HashData(chunks...)
}

// Hash returns the sealed block hash; zero until Seal is called.
func (b *Block) Hash() Hash { return b.hash }

// TxIndex returns the position of the transaction with hash h, or -1.
func (b *Block) TxIndex(h Hash) int {
	for i, tx := range b.Txs {
		if tx.Hash() == h {
			return i
		}
	}
	return -1
}

// ReceiptStatus is the execution outcome of a transaction.
type ReceiptStatus uint8

// Receipt statuses.
const (
	StatusFailed  ReceiptStatus = 0
	StatusSuccess ReceiptStatus = 1
)

// Receipt records the on-chain outcome of executing one transaction.
type Receipt struct {
	TxHash  Hash
	TxIndex int
	Status  ReceiptStatus
	GasUsed uint64
	// EffectiveGasPrice is the realized per-gas price (post-London: base
	// fee + effective tip).
	EffectiveGasPrice Amount
	// CoinbaseTransfer is ETH moved directly to the block producer during
	// execution — how Flashbots searchers pay miners. Zero for ordinary
	// transactions.
	CoinbaseTransfer Amount
	Logs             []Log
}

// Fee returns the total transaction fee paid (gas used times effective
// price).
func (r *Receipt) Fee() Amount {
	return Amount(r.GasUsed) * r.EffectiveGasPrice
}

// Log is an EVM-style event record: an emitting contract address, indexed
// topics and opaque data. Protocol packages provide typed encode/decode
// helpers; detectors consume logs exactly as mev-inspect-style tooling
// consumes archive-node logs.
type Log struct {
	Address Address
	Topics  []Hash
	Data    []byte
}

// EventSignature builds topic-0 for a named event, standing in for the
// Keccak hash of the Solidity event signature.
func EventSignature(name string) Hash { return HashData([]byte("event:" + name)) }
