package types

import (
	"strings"
	"testing"
)

// Month parsing sits on the CLI (`analyze -range`) and HTTP (`?months=`)
// boundaries, so it sees attacker-shaped input. The fuzzers pin the
// safety contract: never panic, never accept a month outside the study
// window, and stay consistent with the Label/String renderings.

func FuzzParseMonth(f *testing.F) {
	for m := Month(0); m < StudyMonths; m++ {
		f.Add(m.Label())
		f.Add(m.String())
	}
	f.Add("")
	f.Add("2021-3")
	f.Add("2021-13")
	f.Add("0000-00")
	f.Add("-2021-03")
	f.Add("2021-03-01")
	f.Add("99999999999-01")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMonth(s)
		if err != nil {
			return
		}
		if m < 0 || m >= StudyMonths {
			t.Fatalf("ParseMonth(%q) = %d, outside the study window", s, m)
		}
		// Accepted months round-trip through their canonical label.
		back, err := ParseMonth(m.Label())
		if err != nil || back != m {
			t.Fatalf("ParseMonth(%q) = %d, but its label %q re-parses to (%d, %v)", s, m, m.Label(), back, err)
		}
	})
}

func FuzzParseMonthRange(f *testing.F) {
	f.Add("")
	f.Add("2021-03..2021-06")
	f.Add("2021-06..2021-03")
	f.Add("2021-03")
	f.Add("..")
	f.Add("2021-03..")
	f.Add("..2021-06")
	f.Add("2021-03..2021-06..2021-09")
	f.Add("3/2021..6/2021")
	f.Fuzz(func(t *testing.T, s string) {
		from, to, err := ParseMonthRange(s)
		if err != nil {
			return
		}
		if from < 0 || to >= StudyMonths || to < from {
			t.Fatalf("ParseMonthRange(%q) = [%d, %d], outside the study window or inverted", s, from, to)
		}
		// Accepted ranges round-trip through their canonical spelling.
		spec := from.Label() + ".." + to.Label()
		f2, t2, err := ParseMonthRange(spec)
		if err != nil || f2 != from || t2 != to {
			t.Fatalf("ParseMonthRange(%q) = [%d, %d], but %q re-parses to ([%d, %d], %v)",
				s, from, to, spec, f2, t2, err)
		}
		// The canonical spelling must agree with what error messages print.
		if strings.Contains(spec, " ") {
			t.Fatalf("labels must not contain spaces: %q", spec)
		}
	})
}
