// Package types defines the fundamental datatypes of the simulated
// Ethereum-like ledger: addresses, hashes, amounts, transactions, blocks,
// receipts and event logs.
//
// The types mirror what a go-ethereum archive node exposes: the measurement
// pipeline in internal/core consumes only these, never simulator internals.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/bits"
)

// Address is a 20-byte account or contract identifier.
type Address [20]byte

// Hash is a 32-byte digest identifying transactions, blocks and log topics.
type Hash [32]byte

// ZeroAddress is the all-zero address, used as a burn/none sentinel.
var ZeroAddress Address

// ZeroHash is the all-zero hash.
var ZeroHash Hash

// BytesToAddress returns an Address from b, left-truncating or
// zero-left-padding as needed.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > len(a) {
		b = b[len(b)-len(a):]
	}
	copy(a[len(a)-len(b):], b)
	return a
}

// HexToAddress parses a 0x-prefixed or bare hex string into an Address.
// Invalid input yields the zero address.
func HexToAddress(s string) Address {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Address{}
	}
	return BytesToAddress(b)
}

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// Short renders the first 4 bytes of the address, for compact logs.
func (a Address) Short() string { return "0x" + hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Hash returns the digest of the address bytes, usable as a log topic.
func (a Address) Hash() Hash {
	var h Hash
	copy(h[12:], a[:])
	return h
}

// AddressFromHash recovers an address stored in a topic by Address.Hash.
func AddressFromHash(h Hash) Address {
	var a Address
	copy(a[:], h[12:])
	return a
}

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Short renders the first 4 bytes of the hash.
func (h Hash) Short() string { return "0x" + hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is the zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// HashData digests arbitrary byte chunks into a Hash. It stands in for
// Keccak-256; collision behaviour is irrelevant to the measurements.
func HashData(chunks ...[]byte) Hash {
	d := sha256.New()
	for _, c := range chunks {
		d.Write(c)
	}
	var h Hash
	d.Sum(h[:0])
	return h
}

// DeriveAddress deterministically derives an address from a namespace and
// an index, so tests and examples can name accounts reproducibly.
func DeriveAddress(namespace string, index uint64) Address {
	var ib [8]byte
	binary.BigEndian.PutUint64(ib[:], index)
	h := HashData([]byte(namespace), ib[:])
	return BytesToAddress(h[12:])
}

// Amount is a quantity of ether or tokens measured in gwei-scale base units
// (1 ETH = 1e9 Amount). int64 keeps arithmetic fast and overflow-safe for
// the magnitudes the simulation uses (max ≈ 9.2e9 ETH).
type Amount int64

// Gwei is one gwei (1e-9 ETH).
const Gwei Amount = 1

// Ether is one ether expressed in Amount base units.
const Ether Amount = 1_000_000_000

// Milliether is one thousandth of an ether.
const Milliether Amount = Ether / 1000

// FromEther converts a float ETH quantity into an Amount. Fractions below
// one gwei are truncated.
func FromEther(eth float64) Amount { return Amount(eth * float64(Ether)) }

// Ether returns the amount as a float count of ETH.
func (a Amount) Ether() float64 { return float64(a) / float64(Ether) }

// GweiFloat returns the amount as a float count of gwei.
func (a Amount) GweiFloat() float64 { return float64(a) }

// String renders the amount with an ETH suffix.
func (a Amount) String() string { return fmt.Sprintf("%.9f ETH", a.Ether()) }

// Abs returns the absolute value of the amount.
func (a Amount) Abs() Amount {
	if a < 0 {
		return -a
	}
	return a
}

// MulDiv computes a*num/den using 128-bit intermediate precision, which the
// AMM and liquidation math need to avoid int64 overflow.
func (a Amount) MulDiv(num, den Amount) Amount {
	if den == 0 {
		return 0
	}
	return Amount(mulDiv128(int64(a), int64(num), int64(den)))
}

func mulDiv128(a, b, den int64) int64 {
	neg := false
	if a < 0 {
		a, neg = -a, !neg
	}
	if b < 0 {
		b, neg = -b, !neg
	}
	if den < 0 {
		den, neg = -den, !neg
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(den) {
		// Quotient would overflow 64 bits; saturate. The simulation never
		// reaches these magnitudes, but saturation beats a panic.
		if neg {
			return math.MinInt64
		}
		return math.MaxInt64
	}
	q, _ := bits.Div64(hi, lo, uint64(den))
	if q > math.MaxInt64 {
		// The 64-bit quotient fits a uint64 but not an int64 (the
		// hi >= den guard only catches quotients ≥ 2^64); saturate here
		// too instead of wrapping negative.
		if neg {
			return math.MinInt64
		}
		return math.MaxInt64
	}
	if neg {
		return -int64(q)
	}
	return int64(q)
}

// MarshalText renders the address as 0x-hex (used by JSON encoders, so
// persisted datasets are human-readable).
func (a Address) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses a 0x-hex address.
func (a *Address) UnmarshalText(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("types: bad address %q: %w", b, err)
	}
	*a = BytesToAddress(raw)
	return nil
}

// MarshalText renders the hash as 0x-hex.
func (h Hash) MarshalText() ([]byte, error) { return []byte(h.String()), nil }

// UnmarshalText parses a 0x-hex hash.
func (h *Hash) UnmarshalText(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(h) {
		return fmt.Errorf("types: bad hash %q", b)
	}
	copy(h[:], raw)
	return nil
}
