package types

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBytesToAddress(t *testing.T) {
	long := make([]byte, 25)
	for i := range long {
		long[i] = byte(i)
	}
	a := BytesToAddress(long)
	if a[0] != 5 || a[19] != 24 {
		t.Errorf("truncation wrong: %v", a)
	}
	short := []byte{0xaa, 0xbb}
	b := BytesToAddress(short)
	if b[18] != 0xaa || b[19] != 0xbb || b[0] != 0 {
		t.Errorf("padding wrong: %v", b)
	}
}

func TestHexToAddress(t *testing.T) {
	a := HexToAddress("0x42B2C65dB7F9e3b6c26Bc6151CCf30CcE0fb99EA")
	if a.IsZero() {
		t.Fatal("parse failed")
	}
	if got := a.String(); got != "0x42b2c65db7f9e3b6c26bc6151ccf30cce0fb99ea" {
		t.Errorf("roundtrip = %s", got)
	}
	if !HexToAddress("nothex").IsZero() {
		t.Error("invalid hex should yield zero address")
	}
}

func TestAddressHashRoundtrip(t *testing.T) {
	a := DeriveAddress("test", 7)
	if got := AddressFromHash(a.Hash()); got != a {
		t.Errorf("roundtrip via topic: got %s want %s", got, a)
	}
}

func TestDeriveAddressDistinct(t *testing.T) {
	seen := map[Address]bool{}
	for i := uint64(0); i < 100; i++ {
		a := DeriveAddress("ns", i)
		if seen[a] {
			t.Fatalf("duplicate address at %d", i)
		}
		seen[a] = true
	}
	if DeriveAddress("ns", 0) == DeriveAddress("other", 0) {
		t.Error("namespaces should not collide")
	}
}

func TestAmountConversions(t *testing.T) {
	if FromEther(1.5) != Ether+Ether/2 {
		t.Errorf("FromEther(1.5) = %d", FromEther(1.5))
	}
	if got := (2 * Ether).Ether(); got != 2.0 {
		t.Errorf("Ether() = %f", got)
	}
	if (-3 * Gwei).Abs() != 3*Gwei {
		t.Error("Abs")
	}
}

func TestMulDiv(t *testing.T) {
	cases := []struct{ a, num, den, want Amount }{
		{100, 3, 4, 75},
		{Ether, Ether, Ether, Ether},                      // 1e9*1e9/1e9 — needs 128-bit
		{5_000_000 * Ether, 997, 1000, 4_985_000 * Ether}, // AMM fee shape
		{-100, 3, 4, -75},
		{100, -3, 4, -75},
		{100, 3, -4, -75},
		{0, 5, 7, 0},
		{5, 7, 0, 0}, // divide by zero guarded
	}
	for _, c := range cases {
		if got := c.a.MulDiv(c.num, c.den); got != c.want {
			t.Errorf("%d.MulDiv(%d,%d) = %d, want %d", c.a, c.num, c.den, got, c.want)
		}
	}
}

func TestMulDivSaturates(t *testing.T) {
	big := Amount(math.MaxInt64)
	if got := big.MulDiv(big, 1); got != math.MaxInt64 {
		t.Errorf("overflow should saturate high, got %d", got)
	}
	if got := (-big).MulDiv(big, 1); got != math.MinInt64 {
		t.Errorf("overflow should saturate low, got %d", got)
	}
}

func TestMulDivMatchesBigIntProperty(t *testing.T) {
	// Property: MulDiv equals exact big-integer truncated division. A
	// float64 oracle is not enough here: when a*num approaches 2^64 the
	// float product loses more than 2 ulps (e.g. a=0xc95e2613,
	// num=0xce06f005, den=0x93), so the exact oracle is the only one that
	// holds over the full uint32 × uint32 input space.
	f := func(a, num uint32, den uint16) bool {
		if den == 0 {
			return true
		}
		got := Amount(a).MulDiv(Amount(num), Amount(den))
		want := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(num)))
		want.Quo(want, big.NewInt(int64(den)))
		if !want.IsInt64() {
			// Exact quotient exceeds int64 (e.g. den=1 with a huge
			// product): MulDiv saturates.
			return got == Amount(math.MaxInt64)
		}
		return int64(got) == want.Int64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// The regression inputs that break the old float64 oracle.
	if got, want := Amount(0xc95e2613).MulDiv(0xce06f005, 0x93), Amount(0x11a39d910554bda); got != want {
		t.Errorf("regression inputs: got %d, want %d", int64(got), int64(want))
	}
	// Quotient in (2^63, 2^64): must saturate, not wrap negative.
	if got := Amount(0xFFFFFFFF).MulDiv(0xFFFFFFFF, 1); got != math.MaxInt64 {
		t.Errorf("uint64-range quotient should saturate, got %d", int64(got))
	}
	if got := Amount(-0xFFFFFFFF).MulDiv(0xFFFFFFFF, 1); got != math.MinInt64 {
		t.Errorf("negative uint64-range quotient should saturate low, got %d", int64(got))
	}
}

func TestTxHashStableAndDistinct(t *testing.T) {
	tx1 := &Transaction{Nonce: 1, From: DeriveAddress("a", 1), GasPrice: 50}
	tx2 := &Transaction{Nonce: 2, From: DeriveAddress("a", 1), GasPrice: 50}
	if tx1.Hash() != tx1.Hash() {
		t.Error("hash not stable")
	}
	if tx1.Hash() == tx2.Hash() {
		t.Error("distinct txs collide")
	}
}

func TestTxHashCoversPayload(t *testing.T) {
	mk := func(amt Amount) *Transaction {
		return &Transaction{Nonce: 1, Payload: Payload{Kind: TxSwap, AmountIn: amt}}
	}
	if mk(5).Hash() == mk(6).Hash() {
		t.Error("payload not covered by hash")
	}
	inner1 := &Transaction{Payload: Payload{Kind: TxFlashLoan, Inner: &Payload{Kind: TxSwap, AmountIn: 1}}}
	inner2 := &Transaction{Payload: Payload{Kind: TxFlashLoan, Inner: &Payload{Kind: TxSwap, AmountIn: 2}}}
	if inner1.Hash() == inner2.Hash() {
		t.Error("inner payload not covered by hash")
	}
}

func TestEffectiveGasPriceLegacy(t *testing.T) {
	tx := &Transaction{GasPrice: 80 * Gwei}
	if tx.EffectiveGasPrice(0) != 80*Gwei {
		t.Error("legacy price pre-London")
	}
	if tx.EffectiveGasPrice(30*Gwei) != 80*Gwei {
		t.Error("legacy price post-London is still GasPrice")
	}
	if tx.BidPrice() != 80*Gwei {
		t.Error("bid price legacy")
	}
}

func TestEffectiveGasPrice1559(t *testing.T) {
	tx := &Transaction{FeeCap: 100 * Gwei, TipCap: 2 * Gwei}
	if got := tx.EffectiveGasPrice(30 * Gwei); got != 32*Gwei {
		t.Errorf("effective = %d", got)
	}
	if got := tx.EffectiveTip(30 * Gwei); got != 2*Gwei {
		t.Errorf("tip = %d", got)
	}
	// Fee cap binds.
	if got := tx.EffectiveGasPrice(99 * Gwei); got != 100*Gwei {
		t.Errorf("capped effective = %d", got)
	}
	if got := tx.EffectiveTip(99 * Gwei); got != 1*Gwei {
		t.Errorf("capped tip = %d", got)
	}
	// Base fee above cap: tip clamps to zero.
	if got := tx.EffectiveTip(200 * Gwei); got != 0 {
		t.Errorf("underwater tip = %d", got)
	}
	if tx.BidPrice() != 100*Gwei {
		t.Error("bid price 1559 should be fee cap")
	}
}

func TestBlockSealAndIndex(t *testing.T) {
	tx1 := &Transaction{Nonce: 1}
	tx2 := &Transaction{Nonce: 2}
	b := &Block{Header: Header{Number: 10}, Txs: []*Transaction{tx1, tx2}}
	if !b.Hash().IsZero() {
		t.Error("hash should be zero before Seal")
	}
	b.Seal()
	if b.Hash().IsZero() {
		t.Error("hash should be set after Seal")
	}
	if b.TxIndex(tx2.Hash()) != 1 {
		t.Error("TxIndex")
	}
	if b.TxIndex(Hash{1}) != -1 {
		t.Error("TxIndex missing")
	}
}

func TestReceiptFee(t *testing.T) {
	r := &Receipt{GasUsed: 21000, EffectiveGasPrice: 100 * Gwei}
	if r.Fee() != 2_100_000*Gwei {
		t.Errorf("fee = %d", r.Fee())
	}
}

func TestEventSignatureDistinct(t *testing.T) {
	if EventSignature("Swap") == EventSignature("Transfer") {
		t.Error("signatures collide")
	}
}
