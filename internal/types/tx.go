package types

import "encoding/binary"

// TxKind labels the high-level shape of a transaction's payload. It stands
// in for contract call data: the executor dispatches on it, but detectors
// never read it — they work from receipts and logs like the paper's
// archive-node crawlers.
type TxKind uint8

// Transaction payload kinds.
const (
	TxTransfer      TxKind = iota // plain ETH transfer
	TxTokenTransfer               // ERC-20 transfer
	TxSwap                        // single DEX swap
	TxMultiSwap                   // multi-hop swap path (arbitrage shape)
	TxLiquidate                   // lending-pool liquidation
	TxFlashLoan                   // flash loan wrapping inner swaps/liquidation
	TxOracleUpdate                // price oracle update
	TxMinerPayout                 // mining-pool payout batch
	TxAddLiquidity                // seed or grow an AMM pool
	TxNoop                        // padding / contract deployment stand-in
)

// String names the transaction kind.
func (k TxKind) String() string {
	switch k {
	case TxTransfer:
		return "transfer"
	case TxTokenTransfer:
		return "token-transfer"
	case TxSwap:
		return "swap"
	case TxMultiSwap:
		return "multi-swap"
	case TxLiquidate:
		return "liquidate"
	case TxFlashLoan:
		return "flash-loan"
	case TxOracleUpdate:
		return "oracle-update"
	case TxMinerPayout:
		return "miner-payout"
	case TxAddLiquidity:
		return "add-liquidity"
	case TxNoop:
		return "noop"
	default:
		return "unknown"
	}
}

// Payload carries the action-specific parameters of a transaction. Exactly
// one field group is meaningful for a given TxKind; the executor validates.
type Payload struct {
	Kind TxKind

	// Transfer / TokenTransfer
	Token     Address // zero for plain ETH
	Recipient Address
	Amount    Amount

	// Swap / MultiSwap: the path alternates venue-scoped hops.
	Hops []SwapHop
	// AmountIn is the exact input amount for the first hop.
	AmountIn Amount
	// MinOut aborts (reverts) the swap if the final output is below it;
	// models slippage protection.
	MinOut Amount

	// Liquidate
	Protocol Address // lending protocol
	LoanID   uint64
	Repay    Amount

	// FlashLoan: borrowed asset and amount; Inner executes atomically with
	// the borrowed funds (arbitrage hops or a liquidation).
	FlashToken  Address
	FlashAmount Amount
	Inner       *Payload

	// OracleUpdate
	OracleToken Address
	// OraclePrice is the new token price in Amount of ETH per whole token.
	OraclePrice Amount

	// MinerPayout / batch recipients
	Payouts []PayoutEntry

	// AddLiquidity
	Venue          Address
	TokenA, TokenB Address
	AmountA        Amount
	AmountB        Amount
}

// SwapHop is one step of a swap path on a specific AMM venue.
type SwapHop struct {
	Venue    Address
	TokenIn  Address
	TokenOut Address
}

// PayoutEntry is one recipient of a mining-pool payout batch.
type PayoutEntry struct {
	To     Address
	Amount Amount
}

// Transaction is a signed (by construction) message from an account.
// Pre-London transactions use GasPrice; post-London ones use the
// FeeCap/TipCap pair and GasPrice is ignored.
type Transaction struct {
	Nonce    uint64
	From     Address
	To       Address
	Value    Amount
	GasLimit uint64

	// Legacy gas price (pre-London, and accepted post-London as
	// FeeCap=TipCap=GasPrice).
	GasPrice Amount
	// EIP-1559 fields; zero means legacy pricing.
	FeeCap Amount
	TipCap Amount

	Payload Payload

	// CoinbaseTip is ETH transferred directly to the block producer during
	// execution — the Flashbots "pay the miner via coinbase transfer"
	// mechanism. It is visible in receipts as a coinbase transfer.
	CoinbaseTip Amount

	// hash caches the first Hash() result. Populate it (by calling Hash)
	// before sharing the transaction across goroutines.
	hash Hash
}

// Hash returns the transaction hash, computed on first call and cached.
func (tx *Transaction) Hash() Hash {
	if !tx.hash.IsZero() {
		return tx.hash
	}
	var buf [8 + 20 + 20 + 8 + 8 + 8 + 8 + 8 + 8 + 1]byte
	binary.BigEndian.PutUint64(buf[0:], tx.Nonce)
	copy(buf[8:], tx.From[:])
	copy(buf[28:], tx.To[:])
	binary.BigEndian.PutUint64(buf[48:], uint64(tx.Value))
	binary.BigEndian.PutUint64(buf[56:], tx.GasLimit)
	binary.BigEndian.PutUint64(buf[64:], uint64(tx.GasPrice))
	binary.BigEndian.PutUint64(buf[72:], uint64(tx.FeeCap))
	binary.BigEndian.PutUint64(buf[80:], uint64(tx.TipCap))
	binary.BigEndian.PutUint64(buf[88:], uint64(tx.CoinbaseTip))
	buf[96] = byte(tx.Payload.Kind)
	tx.hash = HashData(buf[:], payloadDigest(&tx.Payload))
	return tx.hash
}

func payloadDigest(p *Payload) []byte {
	if p == nil {
		return nil
	}
	b := make([]byte, 0, 128)
	b = append(b, byte(p.Kind))
	b = append(b, p.Token[:]...)
	b = append(b, p.Recipient[:]...)
	b = appendU64(b, uint64(p.Amount))
	b = appendU64(b, uint64(p.AmountIn))
	b = appendU64(b, uint64(p.MinOut))
	for _, h := range p.Hops {
		b = append(b, h.Venue[:4]...)
		b = append(b, h.TokenIn[:4]...)
		b = append(b, h.TokenOut[:4]...)
	}
	b = append(b, p.Protocol[:4]...)
	b = appendU64(b, p.LoanID)
	b = appendU64(b, uint64(p.Repay))
	b = append(b, p.FlashToken[:4]...)
	b = appendU64(b, uint64(p.FlashAmount))
	b = append(b, p.OracleToken[:4]...)
	b = appendU64(b, uint64(p.OraclePrice))
	for _, e := range p.Payouts {
		b = append(b, e.To[:4]...)
		b = appendU64(b, uint64(e.Amount))
	}
	b = append(b, p.Venue[:4]...)
	b = append(b, p.TokenA[:4]...)
	b = append(b, p.TokenB[:4]...)
	b = appendU64(b, uint64(p.AmountA))
	b = appendU64(b, uint64(p.AmountB))
	if p.Inner != nil {
		b = append(b, payloadDigest(p.Inner)...)
	}
	return b
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

// ResetHash clears the cached hash after a field mutation (e.g. a gas
// auction re-bid before broadcast).
func (tx *Transaction) ResetHash() { tx.hash = Hash{} }

// EffectiveGasPrice returns the per-gas price actually paid given a block
// base fee, following EIP-1559. With baseFee zero (pre-London) the legacy
// GasPrice applies.
func (tx *Transaction) EffectiveGasPrice(baseFee Amount) Amount {
	if tx.FeeCap == 0 && tx.TipCap == 0 {
		return tx.GasPrice
	}
	p := baseFee + tx.TipCap
	if p > tx.FeeCap {
		p = tx.FeeCap
	}
	return p
}

// EffectiveTip returns the portion of the gas price that goes to the block
// producer (effective price minus the burned base fee), clamped at zero.
func (tx *Transaction) EffectiveTip(baseFee Amount) Amount {
	t := tx.EffectiveGasPrice(baseFee) - baseFee
	if t < 0 {
		return 0
	}
	return t
}

// BidPrice is the gas price a miner uses to rank the transaction before
// knowing the base fee; mempools order by it.
func (tx *Transaction) BidPrice() Amount {
	if tx.FeeCap == 0 && tx.TipCap == 0 {
		return tx.GasPrice
	}
	return tx.FeeCap
}
