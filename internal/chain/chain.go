// Package chain is the simulated blockchain store — the stand-in for the
// paper's go-ethereum archive node. It holds every sealed block with its
// receipts, provides the query surface the measurement pipeline crawls
// (blocks, transactions, logs, by height or hash), and evolves the
// EIP-1559 base fee across the London fork.
package chain

import (
	"errors"
	"fmt"

	"mevscope/internal/types"
)

// Errors returned by chain operations.
var (
	ErrNotFound     = errors.New("chain: not found")
	ErrBadParent    = errors.New("chain: block does not extend the head")
	ErrUnsealed     = errors.New("chain: block is not sealed")
	ErrReceiptCount = errors.New("chain: receipt count does not match transactions")
)

// TxLocation points at a transaction's position on chain.
type TxLocation struct {
	BlockNumber uint64
	Index       int
}

// Chain is an append-only block store with full receipt history.
type Chain struct {
	Timeline types.Timeline

	blocks  []*types.Block
	byHash  map[types.Hash]*types.Block
	txIndex map[types.Hash]TxLocation

	// InitialBaseFee is the base fee of the first post-London block.
	InitialBaseFee types.Amount
	// GasLimit is the per-block gas limit used for base-fee targeting.
	GasLimit uint64
}

// New creates an empty chain over the timeline.
func New(tl types.Timeline) *Chain {
	return &Chain{
		Timeline:       tl,
		byHash:         make(map[types.Hash]*types.Block),
		txIndex:        make(map[types.Hash]TxLocation),
		InitialBaseFee: 50 * types.Gwei,
		GasLimit:       15_000_000,
	}
}

// Len is the number of stored blocks.
func (c *Chain) Len() int { return len(c.blocks) }

// Head returns the latest block, or nil when empty.
func (c *Chain) Head() *types.Block {
	if len(c.blocks) == 0 {
		return nil
	}
	return c.blocks[len(c.blocks)-1]
}

// NextNumber is the height the next appended block must carry.
func (c *Chain) NextNumber() uint64 {
	if h := c.Head(); h != nil {
		return h.Header.Number + 1
	}
	return c.Timeline.StartBlock
}

// londonActive reports whether a height uses EIP-1559 pricing.
func (c *Chain) londonActive(number uint64) bool {
	return number >= c.Timeline.LondonForkBlock()
}

// NextBaseFee computes the base fee for the next block per EIP-1559:
// zero before London, the initial base fee at the fork, then adjusted by
// up to ±1/8 toward the half-full gas target.
func (c *Chain) NextBaseFee() types.Amount {
	next := c.NextNumber()
	if !c.londonActive(next) {
		return 0
	}
	head := c.Head()
	if head == nil || !c.londonActive(head.Header.Number) {
		return c.InitialBaseFee
	}
	parent := head.Header
	target := parent.GasLimit / 2
	if target == 0 {
		return parent.BaseFee
	}
	if parent.GasUsed == target {
		return parent.BaseFee
	}
	if parent.GasUsed > target {
		delta := parent.BaseFee.MulDiv(types.Amount(parent.GasUsed-target), types.Amount(target)) / 8
		if delta < 1 {
			delta = 1
		}
		return parent.BaseFee + delta
	}
	delta := parent.BaseFee.MulDiv(types.Amount(target-parent.GasUsed), types.Amount(target)) / 8
	fee := parent.BaseFee - delta
	if fee < 1 {
		fee = 1 // base fee floors at 1 unit, never zero post-London
	}
	return fee
}

// Append validates and stores a sealed block extending the head.
func (c *Chain) Append(b *types.Block) error {
	if b.Hash().IsZero() {
		return ErrUnsealed
	}
	if b.Header.Number != c.NextNumber() {
		return fmt.Errorf("%w: got %d want %d", ErrBadParent, b.Header.Number, c.NextNumber())
	}
	if len(b.Receipts) != len(b.Txs) {
		return fmt.Errorf("%w: %d receipts, %d txs", ErrReceiptCount, len(b.Receipts), len(b.Txs))
	}
	c.blocks = append(c.blocks, b)
	c.byHash[b.Hash()] = b
	for i, tx := range b.Txs {
		c.txIndex[tx.Hash()] = TxLocation{BlockNumber: b.Header.Number, Index: i}
	}
	return nil
}

// ByNumber returns the block at a height.
func (c *Chain) ByNumber(n uint64) (*types.Block, error) {
	if n < c.Timeline.StartBlock {
		return nil, ErrNotFound
	}
	i := n - c.Timeline.StartBlock
	if i >= uint64(len(c.blocks)) {
		return nil, ErrNotFound
	}
	return c.blocks[i], nil
}

// ByHash returns a block by its hash.
func (c *Chain) ByHash(h types.Hash) (*types.Block, error) {
	b, ok := c.byHash[h]
	if !ok {
		return nil, ErrNotFound
	}
	return b, nil
}

// TxLocation returns where a transaction landed on chain.
func (c *Chain) TxLocation(h types.Hash) (TxLocation, bool) {
	loc, ok := c.txIndex[h]
	return loc, ok
}

// HasTx reports whether the transaction is on chain.
func (c *Chain) HasTx(h types.Hash) bool {
	_, ok := c.txIndex[h]
	return ok
}

// Receipt returns the receipt for a mined transaction.
func (c *Chain) Receipt(h types.Hash) (*types.Receipt, error) {
	loc, ok := c.txIndex[h]
	if !ok {
		return nil, ErrNotFound
	}
	b, err := c.ByNumber(loc.BlockNumber)
	if err != nil {
		return nil, err
	}
	return b.Receipts[loc.Index], nil
}

// Blocks returns the full chain in ascending height order. The slice is
// shared; callers must not mutate it.
func (c *Chain) Blocks() []*types.Block { return c.blocks }

// Range iterates blocks with numbers in [from, to] (inclusive), calling fn
// for each; fn returning false stops early.
func (c *Chain) Range(from, to uint64, fn func(*types.Block) bool) {
	for _, b := range c.blocks {
		n := b.Header.Number
		if n < from {
			continue
		}
		if n > to {
			return
		}
		if !fn(b) {
			return
		}
	}
}

// BlocksInMonth returns the blocks minted during a study month.
func (c *Chain) BlocksInMonth(m types.Month) []*types.Block {
	var out []*types.Block
	from := c.Timeline.FirstBlockOfMonth(m)
	to := from + c.Timeline.BlocksPerMonth - 1
	c.Range(from, to, func(b *types.Block) bool {
		out = append(out, b)
		return true
	})
	return out
}

// EachLog walks every log in a block range, passing the enclosing block,
// transaction index and log.
func (c *Chain) EachLog(from, to uint64, fn func(b *types.Block, txIdx int, l types.Log)) {
	c.Range(from, to, func(b *types.Block) bool {
		for i, rcpt := range b.Receipts {
			for _, l := range rcpt.Logs {
				fn(b, i, l)
			}
		}
		return true
	})
}
