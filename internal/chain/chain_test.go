package chain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mevscope/internal/types"
)

func tl() types.Timeline { return types.DefaultTimeline(100) }

func mkBlock(c *Chain, gasUsed uint64) *types.Block {
	b := &types.Block{Header: types.Header{
		Number:   c.NextNumber(),
		Time:     c.Timeline.TimeOfBlock(c.NextNumber()),
		BaseFee:  c.NextBaseFee(),
		GasLimit: c.GasLimit,
		GasUsed:  gasUsed,
	}}
	b.Seal()
	return b
}

func TestAppendValidation(t *testing.T) {
	c := New(tl())
	unsealed := &types.Block{Header: types.Header{Number: c.NextNumber()}}
	if err := c.Append(unsealed); err != ErrUnsealed {
		t.Errorf("unsealed: %v", err)
	}
	wrong := &types.Block{Header: types.Header{Number: 999}}
	wrong.Seal()
	if err := c.Append(wrong); err == nil {
		t.Error("wrong height should fail")
	}
	bad := &types.Block{Header: types.Header{Number: c.NextNumber()}, Txs: []*types.Transaction{{Nonce: 1}}}
	bad.Seal()
	if err := c.Append(bad); err == nil {
		t.Error("receipt mismatch should fail")
	}
	ok := mkBlock(c, 0)
	if err := c.Append(ok); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || c.Head() != ok {
		t.Error("head")
	}
}

func TestLookups(t *testing.T) {
	c := New(tl())
	tx := &types.Transaction{Nonce: 1, From: types.DeriveAddress("c", 1)}
	b := &types.Block{Header: types.Header{Number: c.NextNumber()}, Txs: []*types.Transaction{tx},
		Receipts: []*types.Receipt{{TxHash: tx.Hash(), Status: types.StatusSuccess}}}
	b.Seal()
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	got, err := c.ByNumber(b.Header.Number)
	if err != nil || got != b {
		t.Error("ByNumber")
	}
	if _, err := c.ByNumber(5); err != ErrNotFound {
		t.Error("ByNumber below start")
	}
	if _, err := c.ByNumber(b.Header.Number + 10); err != ErrNotFound {
		t.Error("ByNumber beyond head")
	}
	got, err = c.ByHash(b.Hash())
	if err != nil || got != b {
		t.Error("ByHash")
	}
	if _, err := c.ByHash(types.Hash{1}); err != ErrNotFound {
		t.Error("ByHash miss")
	}
	loc, ok := c.TxLocation(tx.Hash())
	if !ok || loc.BlockNumber != b.Header.Number || loc.Index != 0 {
		t.Error("TxLocation")
	}
	if !c.HasTx(tx.Hash()) || c.HasTx(types.Hash{2}) {
		t.Error("HasTx")
	}
	r, err := c.Receipt(tx.Hash())
	if err != nil || r.Status != types.StatusSuccess {
		t.Error("Receipt")
	}
	if _, err := c.Receipt(types.Hash{3}); err != ErrNotFound {
		t.Error("Receipt miss")
	}
}

func TestBaseFeePreLondonIsZero(t *testing.T) {
	c := New(tl())
	if c.NextBaseFee() != 0 {
		t.Error("pre-London base fee should be zero")
	}
}

func TestBaseFeeForkActivation(t *testing.T) {
	c := New(tl())
	fork := c.Timeline.LondonForkBlock()
	for c.NextNumber() < fork {
		if c.NextBaseFee() != 0 {
			t.Fatalf("base fee before fork at %d", c.NextNumber())
		}
		if err := c.Append(mkBlock(c, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if c.NextBaseFee() != c.InitialBaseFee {
		t.Errorf("fork block base fee = %v", c.NextBaseFee())
	}
}

func TestBaseFeeAdjustment(t *testing.T) {
	c := New(tl())
	// Fast-forward to the fork.
	for c.NextNumber() < c.Timeline.LondonForkBlock() {
		if err := c.Append(mkBlock(c, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Full block: base fee rises by 1/8.
	if err := c.Append(mkBlock(c, c.GasLimit)); err != nil {
		t.Fatal(err)
	}
	f1 := c.NextBaseFee()
	want := c.InitialBaseFee + c.InitialBaseFee/8
	if f1 != want {
		t.Errorf("after full block: %v want %v", f1, want)
	}
	// Half-full block (exact target): unchanged.
	if err := c.Append(mkBlock(c, c.GasLimit/2)); err != nil {
		t.Fatal(err)
	}
	if c.NextBaseFee() != f1 {
		t.Errorf("after target block: %v want %v", c.NextBaseFee(), f1)
	}
	// Empty block: decreases by 1/8.
	if err := c.Append(mkBlock(c, 0)); err != nil {
		t.Fatal(err)
	}
	f3 := c.NextBaseFee()
	if f3 >= f1 {
		t.Errorf("after empty block: %v should drop below %v", f3, f1)
	}
	// Never reaches zero even with a long run of empty blocks.
	for i := 0; i < 500; i++ {
		if err := c.Append(mkBlock(c, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if c.NextBaseFee() < 1 {
		t.Error("base fee must floor at 1")
	}
}

func TestRangeAndMonths(t *testing.T) {
	c := New(tl())
	for i := 0; i < 250; i++ { // spans months 0,1 and half of 2
		if err := c.Append(mkBlock(c, 0)); err != nil {
			t.Fatal(err)
		}
	}
	var count int
	c.Range(c.Timeline.StartBlock+10, c.Timeline.StartBlock+19, func(b *types.Block) bool {
		count++
		return true
	})
	if count != 10 {
		t.Errorf("range count = %d", count)
	}
	// Early stop.
	count = 0
	c.Range(c.Timeline.StartBlock, c.Timeline.EndBlock(), func(b *types.Block) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop = %d", count)
	}
	if got := len(c.BlocksInMonth(0)); got != 100 {
		t.Errorf("month 0 = %d blocks", got)
	}
	if got := len(c.BlocksInMonth(2)); got != 50 {
		t.Errorf("month 2 = %d blocks", got)
	}
	if got := len(c.BlocksInMonth(5)); got != 0 {
		t.Errorf("month 5 = %d blocks", got)
	}
}

func TestEachLog(t *testing.T) {
	c := New(tl())
	tx := &types.Transaction{Nonce: 1}
	rcpt := &types.Receipt{TxHash: tx.Hash(), Logs: []types.Log{
		{Topics: []types.Hash{types.EventSignature("A")}},
		{Topics: []types.Hash{types.EventSignature("B")}},
	}}
	b := &types.Block{Header: types.Header{Number: c.NextNumber()}, Txs: []*types.Transaction{tx}, Receipts: []*types.Receipt{rcpt}}
	b.Seal()
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	var n int
	c.EachLog(c.Timeline.StartBlock, c.Timeline.EndBlock(), func(b *types.Block, txIdx int, l types.Log) {
		if txIdx != 0 {
			t.Error("txIdx")
		}
		n++
	})
	if n != 2 {
		t.Errorf("log count = %d", n)
	}
}

// Property: however blocks fill, the base fee never moves more than 1/8
// per block and never hits zero after London.
func TestBaseFeeBoundedProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(tl())
		for c.NextNumber() < c.Timeline.LondonForkBlock() {
			if err := c.Append(mkBlock(c, 0)); err != nil {
				return false
			}
		}
		prev := types.Amount(0)
		for i := 0; i < int(steps)+3; i++ {
			used := uint64(rng.Int63n(int64(c.GasLimit + 1)))
			fee := c.NextBaseFee()
			if fee < 1 {
				return false
			}
			if prev > 0 {
				hi := prev + prev/8 + 1
				lo := prev - prev/8 - 1
				if fee > hi || fee < lo {
					return false
				}
			}
			prev = fee
			if err := c.Append(mkBlock(c, used)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
