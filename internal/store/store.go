// Package store is an embeddable document store standing in for the
// MongoDB instance the paper's collection scripts wrote to: typed
// collections with secondary indexes, predicate queries and JSON
// persistence.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Collection is an append-only set of documents of one type with optional
// secondary indexes. The zero value is not usable; call NewCollection.
type Collection[T any] struct {
	name    string
	docs    []T
	indexes map[string]*index[T]
}

type index[T any] struct {
	key     func(T) string
	entries map[string][]int
}

// NewCollection creates an empty named collection.
func NewCollection[T any](name string) *Collection[T] {
	return &Collection[T]{name: name, indexes: make(map[string]*index[T])}
}

// Name returns the collection name.
func (c *Collection[T]) Name() string { return c.name }

// Count is the number of stored documents.
func (c *Collection[T]) Count() int { return len(c.docs) }

// AddIndex registers a secondary index computed by key. Existing documents
// are indexed immediately.
func (c *Collection[T]) AddIndex(name string, key func(T) string) error {
	if _, dup := c.indexes[name]; dup {
		return fmt.Errorf("store: duplicate index %q on %q", name, c.name)
	}
	ix := &index[T]{key: key, entries: make(map[string][]int)}
	for i, d := range c.docs {
		k := key(d)
		ix.entries[k] = append(ix.entries[k], i)
	}
	c.indexes[name] = ix
	return nil
}

// Insert appends a document and returns its position.
func (c *Collection[T]) Insert(doc T) int {
	id := len(c.docs)
	c.docs = append(c.docs, doc)
	for _, ix := range c.indexes {
		k := ix.key(doc)
		ix.entries[k] = append(ix.entries[k], id)
	}
	return id
}

// InsertAll appends many documents.
func (c *Collection[T]) InsertAll(docs ...T) {
	for _, d := range docs {
		c.Insert(d)
	}
}

// Get returns the document at position id.
func (c *Collection[T]) Get(id int) (T, bool) {
	var zero T
	if id < 0 || id >= len(c.docs) {
		return zero, false
	}
	return c.docs[id], true
}

// All returns every document in insertion order. The slice is a copy; the
// documents are shared.
func (c *Collection[T]) All() []T {
	out := make([]T, len(c.docs))
	copy(out, c.docs)
	return out
}

// Find returns the documents whose indexed key equals key, in insertion
// order. An unknown index name returns an error.
func (c *Collection[T]) Find(indexName, key string) ([]T, error) {
	ix, ok := c.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("store: no index %q on %q", indexName, c.name)
	}
	ids := ix.entries[key]
	out := make([]T, len(ids))
	for i, id := range ids {
		out[i] = c.docs[id]
	}
	return out, nil
}

// CountBy returns the number of documents per distinct key of an index —
// the aggregation shape behind most of the paper's per-month plots.
func (c *Collection[T]) CountBy(indexName string) (map[string]int, error) {
	ix, ok := c.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("store: no index %q on %q", indexName, c.name)
	}
	out := make(map[string]int, len(ix.entries))
	for k, ids := range ix.entries {
		out[k] = len(ids)
	}
	return out, nil
}

// Keys returns the sorted distinct keys of an index.
func (c *Collection[T]) Keys(indexName string) ([]string, error) {
	ix, ok := c.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("store: no index %q on %q", indexName, c.name)
	}
	keys := make([]string, 0, len(ix.entries))
	for k := range ix.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Filter returns documents matching pred in insertion order.
func (c *Collection[T]) Filter(pred func(T) bool) []T {
	var out []T
	for _, d := range c.docs {
		if pred(d) {
			out = append(out, d)
		}
	}
	return out
}

// Each iterates documents in insertion order; fn returning false stops.
func (c *Collection[T]) Each(fn func(T) bool) {
	for _, d := range c.docs {
		if !fn(d) {
			return
		}
	}
}

// WriteJSON streams the collection as JSON lines.
func (c *Collection[T]) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range c.docs {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("store: encode %q: %w", c.name, err)
		}
	}
	return bw.Flush()
}

// ReadJSON appends JSON-lines documents from r.
func (c *Collection[T]) ReadJSON(r io.Reader) error {
	dec := json.NewDecoder(r)
	for {
		var d T
		if err := dec.Decode(&d); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("store: decode %q: %w", c.name, err)
		}
		c.Insert(d)
	}
}

// SaveFile persists the collection to dir/<name>.jsonl.
func (c *Collection[T]) SaveFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, c.name+".jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteJSON(f)
}

// LoadFile appends documents from dir/<name>.jsonl.
func (c *Collection[T]) LoadFile(dir string) error {
	f, err := os.Open(filepath.Join(dir, c.name+".jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return c.ReadJSON(f)
}
