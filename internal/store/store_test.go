package store

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

type doc struct {
	ID    int    `json:"id"`
	Month string `json:"month"`
	Kind  string `json:"kind"`
}

func sample() *Collection[doc] {
	c := NewCollection[doc]("mev")
	c.AddIndex("month", func(d doc) string { return d.Month })
	c.InsertAll(
		doc{1, "1/2021", "sandwich"},
		doc{2, "1/2021", "arbitrage"},
		doc{3, "2/2021", "sandwich"},
	)
	return c
}

func TestInsertAndGet(t *testing.T) {
	c := sample()
	if c.Count() != 3 || c.Name() != "mev" {
		t.Error("count/name")
	}
	d, ok := c.Get(1)
	if !ok || d.ID != 2 {
		t.Error("Get")
	}
	if _, ok := c.Get(-1); ok {
		t.Error("Get negative")
	}
	if _, ok := c.Get(99); ok {
		t.Error("Get out of range")
	}
	if len(c.All()) != 3 {
		t.Error("All")
	}
}

func TestIndexFind(t *testing.T) {
	c := sample()
	got, err := c.Find("month", "1/2021")
	if err != nil || len(got) != 2 {
		t.Errorf("find = %v %v", got, err)
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Error("insertion order within index")
	}
	if _, err := c.Find("nope", "x"); err == nil {
		t.Error("unknown index should error")
	}
	empty, err := c.Find("month", "12/2030")
	if err != nil || len(empty) != 0 {
		t.Error("missing key should return empty")
	}
}

func TestAddIndexAfterInsert(t *testing.T) {
	c := sample()
	if err := c.AddIndex("kind", func(d doc) string { return d.Kind }); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Find("kind", "sandwich")
	if len(got) != 2 {
		t.Errorf("late index should cover existing docs: %d", len(got))
	}
	if err := c.AddIndex("kind", func(d doc) string { return d.Kind }); err == nil {
		t.Error("duplicate index should error")
	}
}

func TestCountByAndKeys(t *testing.T) {
	c := sample()
	counts, err := c.CountBy("month")
	if err != nil || counts["1/2021"] != 2 || counts["2/2021"] != 1 {
		t.Errorf("counts = %v %v", counts, err)
	}
	keys, err := c.Keys("month")
	if err != nil || len(keys) != 2 || keys[0] != "1/2021" {
		t.Errorf("keys = %v", keys)
	}
	if _, err := c.CountBy("nope"); err == nil {
		t.Error("unknown index")
	}
	if _, err := c.Keys("nope"); err == nil {
		t.Error("unknown index")
	}
}

func TestFilterEach(t *testing.T) {
	c := sample()
	got := c.Filter(func(d doc) bool { return d.Kind == "sandwich" })
	if len(got) != 2 {
		t.Error("filter")
	}
	n := 0
	c.Each(func(d doc) bool { n++; return n < 2 })
	if n != 2 {
		t.Error("early stop")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("lines = %d", lines)
	}
	c2 := NewCollection[doc]("mev")
	c2.AddIndex("month", func(d doc) string { return d.Month })
	if err := c2.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 3 {
		t.Error("roundtrip count")
	}
	got, _ := c2.Find("month", "1/2021")
	if len(got) != 2 {
		t.Error("index rebuilt on load")
	}
}

func TestReadJSONBadInput(t *testing.T) {
	c := NewCollection[doc]("x")
	if err := c.ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad json should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	c := sample()
	if err := c.SaveFile(dir); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection[doc]("mev")
	if err := c2.LoadFile(dir); err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 3 {
		t.Error("file roundtrip")
	}
	missing := NewCollection[doc]("absent")
	if err := missing.LoadFile(dir); err == nil {
		t.Error("missing file should error")
	}
}

func TestLargeCollection(t *testing.T) {
	c := NewCollection[doc]("big")
	c.AddIndex("month", func(d doc) string { return d.Month })
	for i := 0; i < 10_000; i++ {
		c.Insert(doc{ID: i, Month: strconv.Itoa(i % 23), Kind: "x"})
	}
	counts, _ := c.CountBy("month")
	if len(counts) != 23 {
		t.Error("bucket count")
	}
	got, _ := c.Find("month", "7")
	if len(got) == 0 {
		t.Error("find in large collection")
	}
}
