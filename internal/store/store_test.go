package store

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"mevscope/internal/types"
)

type doc struct {
	ID    int    `json:"id"`
	Month string `json:"month"`
	Kind  string `json:"kind"`
}

func sample() *Collection[doc] {
	c := NewCollection[doc]("mev")
	c.AddIndex("month", func(d doc) string { return d.Month })
	c.InsertAll(
		doc{1, "1/2021", "sandwich"},
		doc{2, "1/2021", "arbitrage"},
		doc{3, "2/2021", "sandwich"},
	)
	return c
}

func TestInsertAndGet(t *testing.T) {
	c := sample()
	if c.Count() != 3 || c.Name() != "mev" {
		t.Error("count/name")
	}
	d, ok := c.Get(1)
	if !ok || d.ID != 2 {
		t.Error("Get")
	}
	if _, ok := c.Get(-1); ok {
		t.Error("Get negative")
	}
	if _, ok := c.Get(99); ok {
		t.Error("Get out of range")
	}
	if len(c.All()) != 3 {
		t.Error("All")
	}
}

func TestIndexFind(t *testing.T) {
	c := sample()
	got, err := c.Find("month", "1/2021")
	if err != nil || len(got) != 2 {
		t.Errorf("find = %v %v", got, err)
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Error("insertion order within index")
	}
	if _, err := c.Find("nope", "x"); err == nil {
		t.Error("unknown index should error")
	}
	empty, err := c.Find("month", "12/2030")
	if err != nil || len(empty) != 0 {
		t.Error("missing key should return empty")
	}
}

func TestAddIndexAfterInsert(t *testing.T) {
	c := sample()
	if err := c.AddIndex("kind", func(d doc) string { return d.Kind }); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Find("kind", "sandwich")
	if len(got) != 2 {
		t.Errorf("late index should cover existing docs: %d", len(got))
	}
	if err := c.AddIndex("kind", func(d doc) string { return d.Kind }); err == nil {
		t.Error("duplicate index should error")
	}
}

func TestCountByAndKeys(t *testing.T) {
	c := sample()
	counts, err := c.CountBy("month")
	if err != nil || counts["1/2021"] != 2 || counts["2/2021"] != 1 {
		t.Errorf("counts = %v %v", counts, err)
	}
	keys, err := c.Keys("month")
	if err != nil || len(keys) != 2 || keys[0] != "1/2021" {
		t.Errorf("keys = %v", keys)
	}
	if _, err := c.CountBy("nope"); err == nil {
		t.Error("unknown index")
	}
	if _, err := c.Keys("nope"); err == nil {
		t.Error("unknown index")
	}
}

func TestFilterEach(t *testing.T) {
	c := sample()
	got := c.Filter(func(d doc) bool { return d.Kind == "sandwich" })
	if len(got) != 2 {
		t.Error("filter")
	}
	n := 0
	c.Each(func(d doc) bool { n++; return n < 2 })
	if n != 2 {
		t.Error("early stop")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("lines = %d", lines)
	}
	c2 := NewCollection[doc]("mev")
	c2.AddIndex("month", func(d doc) string { return d.Month })
	if err := c2.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 3 {
		t.Error("roundtrip count")
	}
	got, _ := c2.Find("month", "1/2021")
	if len(got) != 2 {
		t.Error("index rebuilt on load")
	}
}

func TestReadJSONBadInput(t *testing.T) {
	c := NewCollection[doc]("x")
	if err := c.ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad json should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	c := sample()
	if err := c.SaveFile(dir); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection[doc]("mev")
	if err := c2.LoadFile(dir); err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 3 {
		t.Error("file roundtrip")
	}
	missing := NewCollection[doc]("absent")
	if err := missing.LoadFile(dir); err == nil {
		t.Error("missing file should error")
	}
}

// richDoc exercises every field shape the measurement pipeline persists:
// ledger types (Address, Hash, Amount), timestamps, nested structs,
// slices, maps and raw bytes.
type richDoc struct {
	ID     int               `json:"id"`
	Addr   types.Address     `json:"addr"`
	TxHash types.Hash        `json:"tx_hash"`
	Amt    types.Amount      `json:"amt"`
	When   time.Time         `json:"when"`
	Tags   []string          `json:"tags,omitempty"`
	Counts map[string]int    `json:"counts,omitempty"`
	Data   []byte            `json:"data,omitempty"`
	Inner  *richDoc          `json:"inner,omitempty"`
	Month  types.Month       `json:"month"`
	Meta   map[string]string `json:"meta,omitempty"`
}

// TestSaveLoadFullFidelity is the persistence contract behind
// internal/archive: Save → Load must reproduce identical documents and
// equivalent rebuilt indexes, across every field shape the pipeline
// stores — including extreme Amounts near the int64 edge, zero values
// and nested documents.
func TestSaveLoadFullFidelity(t *testing.T) {
	when := time.Date(2021, time.August, 5, 12, 30, 45, 123456789, time.UTC)
	docs := []richDoc{
		{
			ID: 1, Addr: types.DeriveAddress("acct", 1), TxHash: types.HashData([]byte("a")),
			Amt: 910_000_000_000_000_000, When: when,
			Tags: []string{"sandwich", "flashbots"}, Counts: map[string]int{"hops": 3},
			Data: []byte{0x00, 0xff, 0x10}, Month: 9,
			Inner: &richDoc{ID: 10, Amt: -5, When: when.Add(time.Hour)},
		},
		{ID: 2, Amt: -910_000_000_000_000_000, When: when.Add(48 * time.Hour), Month: 22,
			Meta: map[string]string{"note": "uniçode ✓ and \"quotes\""}},
		{ID: 3, When: time.Time{}.UTC(), Month: 0}, // all-zero document
	}
	byMonth := func(d richDoc) string { return d.Month.String() }

	c := NewCollection[richDoc]("rich")
	if err := c.AddIndex("month", byMonth); err != nil {
		t.Fatal(err)
	}
	c.InsertAll(docs...)

	dir := t.TempDir()
	if err := c.SaveFile(dir); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection[richDoc]("rich")
	if err := c2.AddIndex("month", byMonth); err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadFile(dir); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(c.All(), c2.All()) {
		t.Fatalf("documents diverged across save/load:\n orig: %+v\n load: %+v", c.All(), c2.All())
	}
	keys, err := c.Keys("month")
	if err != nil {
		t.Fatal(err)
	}
	keys2, err := c2.Keys("month")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, keys2) {
		t.Fatalf("index keys diverged: %v vs %v", keys, keys2)
	}
	for _, k := range keys {
		a, _ := c.Find("month", k)
		b, err := c2.Find("month", k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("index %q lookup diverged after reload", k)
		}
	}
	counts, _ := c.CountBy("month")
	counts2, _ := c2.CountBy("month")
	if !reflect.DeepEqual(counts, counts2) {
		t.Errorf("CountBy diverged: %v vs %v", counts, counts2)
	}
}

func TestLargeCollection(t *testing.T) {
	c := NewCollection[doc]("big")
	c.AddIndex("month", func(d doc) string { return d.Month })
	for i := 0; i < 10_000; i++ {
		c.Insert(doc{ID: i, Month: strconv.Itoa(i % 23), Kind: "x"})
	}
	counts, _ := c.CountBy("month")
	if len(counts) != 23 {
		t.Error("bucket count")
	}
	got, _ := c.Find("month", "7")
	if len(got) == 0 {
		t.Error("find in large collection")
	}
}
