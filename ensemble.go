package mevscope

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mevscope/internal/core/measure"
	"mevscope/internal/obs"
	"mevscope/internal/parallel"
	"mevscope/internal/stats"
	"mevscope/internal/types"
)

// CellStat is one report cell aggregated across an ensemble: the
// mean/stddev (and range) of that cell over the per-seed runs.
type CellStat struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// cellOf summarizes per-seed samples into a cell.
func cellOf(xs []float64) CellStat {
	s := stats.Summarize(xs)
	return CellStat{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max}
}

// String renders the cell as mean ± stddev.
func (c CellStat) String() string {
	return fmt.Sprintf("%.2f ± %.2f", c.Mean, c.Std)
}

// MonthStat is one month of an ensemble-aggregated series.
type MonthStat struct {
	Month types.Month
	Value CellStat
}

// EnsembleTable1Row aggregates one Table 1 strategy row across seeds.
type EnsembleTable1Row struct {
	Strategy      string
	Extractions   CellStat
	ViaFlashbots  CellStat
	ViaFlashLoans CellStat
	ViaBoth       CellStat
}

// Ensemble is the merged outcome of a multi-seed scenario sweep: every
// table cell carries a mean and standard deviation over the seeds instead
// of the point estimate a single replay gives.
type Ensemble struct {
	Scenario string
	// Seeds are the run seeds in ascending order; the merge is computed in
	// this order, so the result is independent of submission order and of
	// the parallelism the runs executed with.
	Seeds []int64

	// Table1 holds the sandwiching/arbitrage/liquidation rows plus the
	// total row, in the paper's order.
	Table1 []EnsembleTable1Row
	// Fig3Ratio is the monthly Flashbots block share.
	Fig3Ratio []MonthStat
	// Fig4Hashrate is the monthly Flashbots hashrate estimate.
	Fig4Hashrate []MonthStat

	// Figure 9 channel shares over the runs whose observation window
	// opened (Fig9Runs of len(Seeds)).
	Fig9Runs       int
	FlashbotsShare CellStat
	PrivateShare   CellStat
	PublicShare    CellStat

	// Headline scalars.
	BundlesPerBlock CellStat
	NegativeShare   CellStat
	Top2Share       CellStat
}

// RunEnsemble simulates one study per seed under the named scenario,
// fanning runs across min(parallelism, len(seeds)) goroutines, and merges
// the per-seed reports into mean/stddev cells. parallelism < 1 selects
// runtime.NumCPU(). The merge iterates seeds in ascending order and each
// run is deterministic in its seed alone, so the result does not depend on
// seed order or parallelism.
func RunEnsemble(seeds []int64, scenarioName string, parallelism int) (*Ensemble, error) {
	return RunEnsembleWith(Options{Scenario: scenarioName}, seeds, parallelism)
}

// RunEnsembleWith is RunEnsemble with explicit scale options; base.Seed is
// overridden by each entry of seeds. When runs fan out across seeds, each
// run's own analysis defaults to sequential (the cores are already busy)
// unless base.Parallelism asks otherwise.
func RunEnsembleWith(base Options, seeds []int64, parallelism int) (*Ensemble, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mevscope: ensemble needs at least one seed")
	}
	if _, err := base.Config(); err != nil {
		return nil, err
	}
	sorted := append([]int64(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Split the pool between the seed fan-out and each run's own
	// analysis: with fewer seeds than workers, the leftover cores go to
	// the per-run pipelines instead of idling.
	parallelism = parallel.Workers(parallelism)
	fanOut := parallelism
	if fanOut > len(sorted) {
		fanOut = len(sorted)
	}
	if base.Parallelism < 1 {
		base.Parallelism = parallelism / fanOut
		if base.Parallelism < 1 {
			base.Parallelism = 1
		}
	}
	type outcome struct {
		study *Study
		err   error
	}
	outcomes := parallel.MapSpan(base.Span, len(sorted), fanOut, func(i int) outcome {
		opts := base
		opts.Seed = sorted[i]
		rsp := base.Span.Child(obs.StageRun)
		rsp.SetLabel(fmt.Sprintf("seed %d", opts.Seed))
		opts.Span = rsp
		st, err := Run(opts)
		rsp.End()
		return outcome{study: st, err: err}
	})
	studies := make([]*Study, len(outcomes))
	for i, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("mevscope: seed %d: %w", sorted[i], o.err)
		}
		studies[i] = o.study
	}
	ens := mergeStudies(studies)
	ens.Scenario = base.Scenario
	if ens.Scenario == "" {
		ens.Scenario = "baseline"
	}
	ens.Seeds = sorted
	return ens, nil
}

// mergeStudies folds per-seed reports into ensemble cells. Studies must be
// ordered (ascending seed); every aggregation reads them in slice order.
func mergeStudies(studies []*Study) *Ensemble {
	ens := &Ensemble{}

	// Table 1: strategy rows plus total, cell by cell.
	nRows := len(studies[0].Report.Table1.Rows)
	for ri := 0; ri <= nRows; ri++ {
		var row EnsembleTable1Row
		var ex, fb, fl, both []float64
		for _, st := range studies {
			t := st.Report.Table1
			r := t.Total
			if ri < nRows {
				r = t.Rows[ri]
			}
			row.Strategy = r.Strategy
			ex = append(ex, float64(r.Extractions))
			fb = append(fb, float64(r.ViaFlashbots))
			fl = append(fl, float64(r.ViaFlashLoans))
			both = append(both, float64(r.ViaBoth))
		}
		row.Extractions = cellOf(ex)
		row.ViaFlashbots = cellOf(fb)
		row.ViaFlashLoans = cellOf(fl)
		row.ViaBoth = cellOf(both)
		ens.Table1 = append(ens.Table1, row)
	}

	// Monthly series: months present in any run, ascending.
	ens.Fig3Ratio = mergeMonthly(studies, func(st *Study) []MonthValuePair {
		out := make([]MonthValuePair, 0, len(st.Report.Fig3))
		for _, r := range st.Report.Fig3 {
			out = append(out, MonthValuePair{Month: r.Month, Value: r.Ratio()})
		}
		return out
	})
	ens.Fig4Hashrate = mergeMonthly(studies, func(st *Study) []MonthValuePair {
		out := make([]MonthValuePair, 0, len(st.Report.Fig4))
		for _, mv := range st.Report.Fig4 {
			out = append(out, MonthValuePair{Month: mv.Month, Value: mv.Value})
		}
		return out
	})

	// Figure 9 shares, over runs with an observation window.
	var fbs, privs, pubs []float64
	for _, st := range studies {
		f9 := st.Report.Fig9
		if f9 == nil || f9.Split.Total == 0 {
			continue
		}
		ens.Fig9Runs++
		fbs = append(fbs, f9.Split.FlashbotsShare())
		privs = append(privs, f9.Split.PrivateShare())
		pubs = append(pubs, f9.Split.PublicShare())
	}
	ens.FlashbotsShare = cellOf(fbs)
	ens.PrivateShare = cellOf(privs)
	ens.PublicShare = cellOf(pubs)

	// Headline scalars.
	var bpb, neg, top2 []float64
	for _, st := range studies {
		bpb = append(bpb, st.Report.Bundles.BundlesPerBlock.Mean)
		neg = append(neg, st.Report.Negatives.Share())
		top2 = append(top2, st.Report.Concentration.Top2Share)
	}
	ens.BundlesPerBlock = cellOf(bpb)
	ens.NegativeShare = cellOf(neg)
	ens.Top2Share = cellOf(top2)
	return ens
}

// MonthValuePair is one month's scalar from a single run, used when
// merging monthly series across seeds.
type MonthValuePair struct {
	Month types.Month
	Value float64
}

// mergeMonthly aggregates a per-run monthly series cell by cell.
func mergeMonthly(studies []*Study, series func(*Study) []MonthValuePair) []MonthStat {
	perMonth := map[types.Month][]float64{}
	for _, st := range studies {
		for _, p := range series(st) {
			perMonth[p.Month] = append(perMonth[p.Month], p.Value)
		}
	}
	months := make([]types.Month, 0, len(perMonth))
	for m := range perMonth {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i] < months[j] })
	out := make([]MonthStat, 0, len(months))
	for _, m := range months {
		out = append(out, MonthStat{Month: m, Value: cellOf(perMonth[m])})
	}
	return out
}

// annotated converts the cell into an ensemble-annotated artifact value:
// the mean with the cross-seed standard deviation attached.
func (c CellStat) annotated() measure.Value { return measure.MeanStd(c.Mean, c.Std) }

// Artifacts exposes the merged ensemble through the same structured
// artifact model single-run reports use: every mean±stddev cell becomes
// an annotated value ({"mean": …, "std": …} in JSON), so downstream
// consumers read ensembles and point estimates through one schema.
func (e *Ensemble) Artifacts() []measure.Artifact {
	table1 := measure.Artifact{
		Name:  "ensemble_table1",
		Title: "Table 1 (mean ± stddev per cell)",
		Columns: []measure.Column{
			{Name: "strategy", Kind: measure.KindString},
			{Name: "extractions", Kind: measure.KindFloat},
			{Name: "via_flashbots", Kind: measure.KindFloat},
			{Name: "via_flash_loans", Kind: measure.KindFloat},
			{Name: "via_both", Kind: measure.KindFloat},
		},
	}
	for _, r := range e.Table1 {
		table1.Rows = append(table1.Rows, []measure.Value{
			measure.Str(r.Strategy), r.Extractions.annotated(), r.ViaFlashbots.annotated(),
			r.ViaFlashLoans.annotated(), r.ViaBoth.annotated(),
		})
	}
	monthly := func(name, title, col string, series []MonthStat) measure.Artifact {
		a := measure.Artifact{
			Name:  name,
			Title: title,
			Columns: []measure.Column{
				{Name: "month", Kind: measure.KindMonth}, {Name: col, Kind: measure.KindFloat},
			},
		}
		for _, ms := range series {
			a.Rows = append(a.Rows, []measure.Value{measure.MonthCell(ms.Month), ms.Value.annotated()})
		}
		return a
	}
	fig9 := measure.Artifact{
		Name:  "ensemble_fig9",
		Title: "Figure 9: window sandwich channels",
		Scalars: []measure.Scalar{
			{Name: "runs", Value: measure.Int(e.Fig9Runs)},
			{Name: "seeds", Value: measure.Int(len(e.Seeds))},
			{Name: "flashbots_share", Value: e.FlashbotsShare.annotated()},
			{Name: "private_share", Value: e.PrivateShare.annotated()},
			{Name: "public_share", Value: e.PublicShare.annotated()},
		},
	}
	scalars := measure.Artifact{
		Name:  "ensemble_scalars",
		Title: "headline scalars",
		Scalars: []measure.Scalar{
			{Name: "bundles_per_block", Value: e.BundlesPerBlock.annotated()},
			{Name: "negative_share", Value: e.NegativeShare.annotated()},
			{Name: "top2_share", Value: e.Top2Share.annotated()},
		},
	}
	return []measure.Artifact{
		table1,
		monthly("ensemble_fig3", "Figure 3: Flashbots block ratio per month", "ratio", e.Fig3Ratio),
		monthly("ensemble_fig4", "Figure 4: estimated Flashbots hashrate per month", "hashrate", e.Fig4Hashrate),
		fig9,
		scalars,
	}
}

// Format renders the ensemble summary as text, in paper order.
func (e *Ensemble) Format() string {
	var b strings.Builder
	e.WriteSummary(&b)
	return b.String()
}

// WriteSummary writes the ensemble report to w — a walk over the
// ensemble's artifact model, like the single-run text renderer.
func (e *Ensemble) WriteSummary(w io.Writer) {
	arts := map[string]measure.Artifact{}
	for _, a := range e.Artifacts() {
		arts[a.Name] = a
	}
	cell := func(v measure.Value) string { return fmt.Sprintf("%.2f ± %.2f", v.Float, v.Std) }

	fmt.Fprintf(w, "=== Ensemble: scenario %q over %d seeds %v ===\n\n", e.Scenario, len(e.Seeds), e.Seeds)

	t1 := arts["ensemble_table1"]
	fmt.Fprintf(w, "--- %s ---\n", t1.Title)
	fmt.Fprintf(w, "%-12s %18s %18s %18s %14s\n", "MEV Strategy", "Extractions", "Via Flashbots", "Via Flash Loans", "Via Both")
	for _, row := range t1.Rows {
		fmt.Fprintf(w, "%-12s %18s %18s %18s %14s\n",
			row[0].Str, cell(row[1]), cell(row[2]), cell(row[3]), cell(row[4]))
	}
	fmt.Fprintln(w)

	for _, name := range []string{"ensemble_fig3", "ensemble_fig4"} {
		a := arts[name]
		fmt.Fprintf(w, "--- %s ---\n", a.Title)
		for _, row := range a.Rows {
			fmt.Fprintf(w, "%8s  %6.1f%% ± %4.1f%%\n", row[0].Month, 100*row[1].Float, 100*row[1].Std)
		}
		fmt.Fprintln(w)
	}

	if f9 := arts["ensemble_fig9"]; f9.Scalar("runs").Int > 0 {
		fb, priv, pub := f9.Scalar("flashbots_share"), f9.Scalar("private_share"), f9.Scalar("public_share")
		fmt.Fprintf(w, "--- Figure 9: window sandwich channels (%d/%d runs) ---\n",
			f9.Scalar("runs").Int, f9.Scalar("seeds").Int)
		fmt.Fprintf(w, "via Flashbots %5.1f%% ± %4.1f%% | private %5.1f%% ± %4.1f%% | public %5.1f%% ± %4.1f%%\n\n",
			100*fb.Float, 100*fb.Std, 100*priv.Float, 100*priv.Std, 100*pub.Float, 100*pub.Std)
	}

	sc := arts["ensemble_scalars"]
	fmt.Fprintf(w, "--- %s ---\n", sc.Title)
	fmt.Fprintf(w, "bundles/block:            %s\n", cell(sc.Scalar("bundles_per_block")))
	fmt.Fprintf(w, "unprofitable FB share:    %.2f%% ± %.2f%%\n",
		100*sc.Scalar("negative_share").Float, 100*sc.Scalar("negative_share").Std)
	fmt.Fprintf(w, "top-2 miner share:        %.1f%% ± %.1f%%\n",
		100*sc.Scalar("top2_share").Float, 100*sc.Scalar("top2_share").Std)
}
