package mevscope

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mevscope/internal/parallel"
	"mevscope/internal/stats"
	"mevscope/internal/types"
)

// CellStat is one report cell aggregated across an ensemble: the
// mean/stddev (and range) of that cell over the per-seed runs.
type CellStat struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// cellOf summarizes per-seed samples into a cell.
func cellOf(xs []float64) CellStat {
	s := stats.Summarize(xs)
	return CellStat{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max}
}

// String renders the cell as mean ± stddev.
func (c CellStat) String() string {
	return fmt.Sprintf("%.2f ± %.2f", c.Mean, c.Std)
}

// MonthStat is one month of an ensemble-aggregated series.
type MonthStat struct {
	Month types.Month
	Value CellStat
}

// EnsembleTable1Row aggregates one Table 1 strategy row across seeds.
type EnsembleTable1Row struct {
	Strategy      string
	Extractions   CellStat
	ViaFlashbots  CellStat
	ViaFlashLoans CellStat
	ViaBoth       CellStat
}

// Ensemble is the merged outcome of a multi-seed scenario sweep: every
// table cell carries a mean and standard deviation over the seeds instead
// of the point estimate a single replay gives.
type Ensemble struct {
	Scenario string
	// Seeds are the run seeds in ascending order; the merge is computed in
	// this order, so the result is independent of submission order and of
	// the parallelism the runs executed with.
	Seeds []int64

	// Table1 holds the sandwiching/arbitrage/liquidation rows plus the
	// total row, in the paper's order.
	Table1 []EnsembleTable1Row
	// Fig3Ratio is the monthly Flashbots block share.
	Fig3Ratio []MonthStat
	// Fig4Hashrate is the monthly Flashbots hashrate estimate.
	Fig4Hashrate []MonthStat

	// Figure 9 channel shares over the runs whose observation window
	// opened (Fig9Runs of len(Seeds)).
	Fig9Runs       int
	FlashbotsShare CellStat
	PrivateShare   CellStat
	PublicShare    CellStat

	// Headline scalars.
	BundlesPerBlock CellStat
	NegativeShare   CellStat
	Top2Share       CellStat
}

// RunEnsemble simulates one study per seed under the named scenario,
// fanning runs across min(parallelism, len(seeds)) goroutines, and merges
// the per-seed reports into mean/stddev cells. parallelism < 1 selects
// runtime.NumCPU(). The merge iterates seeds in ascending order and each
// run is deterministic in its seed alone, so the result does not depend on
// seed order or parallelism.
func RunEnsemble(seeds []int64, scenarioName string, parallelism int) (*Ensemble, error) {
	return RunEnsembleWith(Options{Scenario: scenarioName}, seeds, parallelism)
}

// RunEnsembleWith is RunEnsemble with explicit scale options; base.Seed is
// overridden by each entry of seeds. When runs fan out across seeds, each
// run's own analysis defaults to sequential (the cores are already busy)
// unless base.Parallelism asks otherwise.
func RunEnsembleWith(base Options, seeds []int64, parallelism int) (*Ensemble, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mevscope: ensemble needs at least one seed")
	}
	if _, err := base.Config(); err != nil {
		return nil, err
	}
	sorted := append([]int64(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Split the pool between the seed fan-out and each run's own
	// analysis: with fewer seeds than workers, the leftover cores go to
	// the per-run pipelines instead of idling.
	parallelism = parallel.Workers(parallelism)
	fanOut := parallelism
	if fanOut > len(sorted) {
		fanOut = len(sorted)
	}
	if base.Parallelism < 1 {
		base.Parallelism = parallelism / fanOut
		if base.Parallelism < 1 {
			base.Parallelism = 1
		}
	}
	type outcome struct {
		study *Study
		err   error
	}
	outcomes := parallel.Map(len(sorted), fanOut, func(i int) outcome {
		opts := base
		opts.Seed = sorted[i]
		st, err := Run(opts)
		return outcome{study: st, err: err}
	})
	studies := make([]*Study, len(outcomes))
	for i, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("mevscope: seed %d: %w", sorted[i], o.err)
		}
		studies[i] = o.study
	}
	ens := mergeStudies(studies)
	ens.Scenario = base.Scenario
	if ens.Scenario == "" {
		ens.Scenario = "baseline"
	}
	ens.Seeds = sorted
	return ens, nil
}

// mergeStudies folds per-seed reports into ensemble cells. Studies must be
// ordered (ascending seed); every aggregation reads them in slice order.
func mergeStudies(studies []*Study) *Ensemble {
	ens := &Ensemble{}

	// Table 1: strategy rows plus total, cell by cell.
	nRows := len(studies[0].Report.Table1.Rows)
	for ri := 0; ri <= nRows; ri++ {
		var row EnsembleTable1Row
		var ex, fb, fl, both []float64
		for _, st := range studies {
			t := st.Report.Table1
			r := t.Total
			if ri < nRows {
				r = t.Rows[ri]
			}
			row.Strategy = r.Strategy
			ex = append(ex, float64(r.Extractions))
			fb = append(fb, float64(r.ViaFlashbots))
			fl = append(fl, float64(r.ViaFlashLoans))
			both = append(both, float64(r.ViaBoth))
		}
		row.Extractions = cellOf(ex)
		row.ViaFlashbots = cellOf(fb)
		row.ViaFlashLoans = cellOf(fl)
		row.ViaBoth = cellOf(both)
		ens.Table1 = append(ens.Table1, row)
	}

	// Monthly series: months present in any run, ascending.
	ens.Fig3Ratio = mergeMonthly(studies, func(st *Study) []MonthValuePair {
		out := make([]MonthValuePair, 0, len(st.Report.Fig3))
		for _, r := range st.Report.Fig3 {
			out = append(out, MonthValuePair{Month: r.Month, Value: r.Ratio()})
		}
		return out
	})
	ens.Fig4Hashrate = mergeMonthly(studies, func(st *Study) []MonthValuePair {
		out := make([]MonthValuePair, 0, len(st.Report.Fig4))
		for _, mv := range st.Report.Fig4 {
			out = append(out, MonthValuePair{Month: mv.Month, Value: mv.Value})
		}
		return out
	})

	// Figure 9 shares, over runs with an observation window.
	var fbs, privs, pubs []float64
	for _, st := range studies {
		f9 := st.Report.Fig9
		if f9 == nil || f9.Split.Total == 0 {
			continue
		}
		ens.Fig9Runs++
		fbs = append(fbs, f9.Split.FlashbotsShare())
		privs = append(privs, f9.Split.PrivateShare())
		pubs = append(pubs, f9.Split.PublicShare())
	}
	ens.FlashbotsShare = cellOf(fbs)
	ens.PrivateShare = cellOf(privs)
	ens.PublicShare = cellOf(pubs)

	// Headline scalars.
	var bpb, neg, top2 []float64
	for _, st := range studies {
		bpb = append(bpb, st.Report.Bundles.BundlesPerBlock.Mean)
		neg = append(neg, st.Report.Negatives.Share())
		top2 = append(top2, st.Report.Concentration.Top2Share)
	}
	ens.BundlesPerBlock = cellOf(bpb)
	ens.NegativeShare = cellOf(neg)
	ens.Top2Share = cellOf(top2)
	return ens
}

// MonthValuePair is one month's scalar from a single run, used when
// merging monthly series across seeds.
type MonthValuePair struct {
	Month types.Month
	Value float64
}

// mergeMonthly aggregates a per-run monthly series cell by cell.
func mergeMonthly(studies []*Study, series func(*Study) []MonthValuePair) []MonthStat {
	perMonth := map[types.Month][]float64{}
	for _, st := range studies {
		for _, p := range series(st) {
			perMonth[p.Month] = append(perMonth[p.Month], p.Value)
		}
	}
	months := make([]types.Month, 0, len(perMonth))
	for m := range perMonth {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i] < months[j] })
	out := make([]MonthStat, 0, len(months))
	for _, m := range months {
		out = append(out, MonthStat{Month: m, Value: cellOf(perMonth[m])})
	}
	return out
}

// Format renders the ensemble summary as text, in paper order.
func (e *Ensemble) Format() string {
	var b strings.Builder
	e.WriteSummary(&b)
	return b.String()
}

// WriteSummary writes the ensemble report to w.
func (e *Ensemble) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "=== Ensemble: scenario %q over %d seeds %v ===\n\n", e.Scenario, len(e.Seeds), e.Seeds)

	fmt.Fprintf(w, "--- Table 1 (mean ± stddev per cell) ---\n")
	fmt.Fprintf(w, "%-12s %18s %18s %18s %14s\n", "MEV Strategy", "Extractions", "Via Flashbots", "Via Flash Loans", "Via Both")
	for _, r := range e.Table1 {
		fmt.Fprintf(w, "%-12s %18s %18s %18s %14s\n",
			r.Strategy, r.Extractions, r.ViaFlashbots, r.ViaFlashLoans, r.ViaBoth)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "--- Figure 3: Flashbots block ratio per month ---\n")
	for _, ms := range e.Fig3Ratio {
		fmt.Fprintf(w, "%8s  %6.1f%% ± %4.1f%%\n", ms.Month, 100*ms.Value.Mean, 100*ms.Value.Std)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "--- Figure 4: estimated Flashbots hashrate per month ---\n")
	for _, ms := range e.Fig4Hashrate {
		fmt.Fprintf(w, "%8s  %6.1f%% ± %4.1f%%\n", ms.Month, 100*ms.Value.Mean, 100*ms.Value.Std)
	}
	fmt.Fprintln(w)

	if e.Fig9Runs > 0 {
		fmt.Fprintf(w, "--- Figure 9: window sandwich channels (%d/%d runs) ---\n", e.Fig9Runs, len(e.Seeds))
		fmt.Fprintf(w, "via Flashbots %5.1f%% ± %4.1f%% | private %5.1f%% ± %4.1f%% | public %5.1f%% ± %4.1f%%\n\n",
			100*e.FlashbotsShare.Mean, 100*e.FlashbotsShare.Std,
			100*e.PrivateShare.Mean, 100*e.PrivateShare.Std,
			100*e.PublicShare.Mean, 100*e.PublicShare.Std)
	}

	fmt.Fprintf(w, "--- headline scalars ---\n")
	fmt.Fprintf(w, "bundles/block:            %s\n", e.BundlesPerBlock)
	fmt.Fprintf(w, "unprofitable FB share:    %.2f%% ± %.2f%%\n", 100*e.NegativeShare.Mean, 100*e.NegativeShare.Std)
	fmt.Fprintf(w, "top-2 miner share:        %.1f%% ± %.1f%%\n", 100*e.Top2Share.Mean, 100*e.Top2Share.Std)
}
