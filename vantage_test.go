package mevscope

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"mevscope/internal/dataset"
	"mevscope/internal/sim"
	"mevscope/internal/stream"
)

// TestSingleVantageScenarioGolden: the single-vantage scenario is the
// paper baseline made explicit — its report must be byte-identical to
// the golden capture, proving the observation-network refactor changed
// nothing about the single-observer world.
func TestSingleVantageScenarioGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/report_seed1234_bpm100.golden")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Options{Seed: 1234, BlocksPerMonth: 100, Scenario: "single-vantage"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st.WriteReport(&buf)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("single-vantage scenario drifted from the golden report")
	}
}

// Shared multi-vantage study for the root-level acceptance tests.
var (
	unionOnce  sync.Once
	unionStudy *Study
	unionErr   error
)

func multiVantageStudy(t *testing.T) *Study {
	t.Helper()
	unionOnce.Do(func() {
		unionStudy, unionErr = Run(Options{Seed: 99, BlocksPerMonth: 60, Scenario: "multi-vantage-union"})
	})
	if unionErr != nil {
		t.Fatal(unionErr)
	}
	return unionStudy
}

// TestMultiVantageUnionObservesMore: on the same world, the union of
// four vantages records strictly more distinct pending transactions
// than the paper's single vantage, and therefore classifies no more
// sandwiches as private.
func TestMultiVantageUnionObservesMore(t *testing.T) {
	st := multiVantageStudy(t)
	vs := st.Sim.Net.Vantages()
	if len(vs) != 4 {
		t.Fatalf("multi-vantage-union world has %d vantages, want 4", len(vs))
	}
	ds := dataset.FromSim(st.Sim)
	ds.View = Options{Scenario: "multi-vantage-union"}.resolvedView()
	if ds.View != "union" {
		t.Fatalf("scenario view = %q, want union", ds.View)
	}
	union, err := ds.ResolveView()
	if err != nil {
		t.Fatal(err)
	}
	single := vs[0].Count()
	if union.Count() <= single {
		t.Fatalf("union observed %d txs, single vantage %d — union must be strictly larger", union.Count(), single)
	}

	// The report's sensitivity artifact carries the same facts.
	vsens := st.Report.VantageSensitivity
	if len(vsens.Vantages) != 4 {
		t.Fatalf("sensitivity tracks %d vantages, want 4", len(vsens.Vantages))
	}
	if vsens.Union.Observed != union.Count() {
		t.Errorf("sensitivity union observed = %d, view says %d", vsens.Union.Observed, union.Count())
	}
	for _, v := range vsens.Vantages {
		if v.PrivateSandwiches < vsens.Union.PrivateSandwiches {
			t.Errorf("vantage %d private count %d below the union's %d — a single vantage can only overcount private",
				v.Vantage, v.PrivateSandwiches, vsens.Union.PrivateSandwiches)
		}
	}

	// The artifact renders with rows, and the multi-vantage text report
	// carries the sensitivity section (the single-vantage one must not —
	// that's what keeps the golden byte-identical).
	a, ok := st.Report.Artifact("vantage_sensitivity")
	if !ok || len(a.Rows) == 0 {
		t.Fatalf("vantage_sensitivity artifact missing or empty (rows=%d)", len(a.Rows))
	}
	var txt bytes.Buffer
	st.WriteReport(&txt)
	if !strings.Contains(txt.String(), "vantage sensitivity") {
		t.Error("multi-vantage text report is missing the sensitivity section")
	}
}

// TestMultiVantageParallelDeterminism: the multi-vantage pipeline keeps
// the repo-wide guarantee — byte-identical reports at any worker count.
func TestMultiVantageParallelDeterminism(t *testing.T) {
	st := multiVantageStudy(t)
	render := func(workers int) []byte {
		ds := dataset.FromSim(st.Sim)
		ds.View = "union"
		rst, err := AnalyzeDataset(ds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		rst.WriteReport(&buf)
		return buf.Bytes()
	}
	sequential := render(1)
	if len(sequential) == 0 {
		t.Fatal("empty sequential report")
	}
	for _, workers := range []int{4, 8} {
		if got := render(workers); !bytes.Equal(got, sequential) {
			t.Errorf("multi-vantage report with %d workers differs from sequential", workers)
		}
	}
}

// TestDegradedObserverLosesCoverage: the degraded-observer scenario's
// flaky vantage records less than the healthy baseline observer on the
// same seed/scale, and its outage windows are really blind.
func TestDegradedObserverLosesCoverage(t *testing.T) {
	run := func(scenario string) *Study {
		st, err := Run(Options{Seed: 5, BlocksPerMonth: 40, Scenario: scenario})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	healthy := run("baseline")
	degraded := run("degraded-observer")
	h := healthy.Sim.Net.Observer().Count()
	d := degraded.Sim.Net.Observer().Count()
	if d >= h {
		t.Errorf("degraded observer recorded %d txs, healthy %d — degradation should lose coverage", d, h)
	}
	// Nothing recorded inside an outage window.
	cfg := degraded.Sim.Cfg.Net
	if len(cfg.Vantages) != 1 || len(cfg.Vantages[0].Outages) != 2 {
		t.Fatalf("degraded scenario vantages = %+v", cfg.Vantages)
	}
	for _, rec := range degraded.Sim.Net.Observer().Records() {
		for _, w := range cfg.Vantages[0].Outages {
			if rec.FirstSeenBlock >= w.Start && rec.FirstSeenBlock <= w.Stop {
				t.Fatalf("record at block %d falls inside outage %d..%d", rec.FirstSeenBlock, w.Start, w.Stop)
			}
		}
	}
	// Fewer observations mean at least as many private classifications.
	if healthy.Report.Fig9 != nil && degraded.Report.Fig9 != nil {
		if degraded.Report.Fig9.Split.Private < healthy.Report.Fig9.Split.Private {
			t.Errorf("degraded private count %d below healthy %d", degraded.Report.Fig9.Split.Private, healthy.Report.Fig9.Split.Private)
		}
	}
}

// TestStreamMatchesBatchMultiVantage: the streaming follower over a
// multi-vantage world snapshots a report byte-identical to the batch
// pipeline — the incremental seams carry the vantage logs too.
func TestStreamMatchesBatchMultiVantage(t *testing.T) {
	opts := Options{Seed: 42, BlocksPerMonth: 40, Scenario: "multi-vantage-union"}
	cfg, err := opts.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	batch, err := AnalyzeWith(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	batch.WriteReport(&want)
	// The vantage artifact must be populated in the batch path.
	if len(batch.Report.VantageSensitivity.Vantages) != 4 {
		t.Fatalf("batch sensitivity tracks %d vantages", len(batch.Report.VantageSensitivity.Vantages))
	}
	if !strings.Contains(want.String(), "vantage sensitivity") {
		t.Fatal("batch report missing the sensitivity section")
	}

	f := stream.ForSim(s, 2)
	if _, err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	WriteReportTo(&got, f.Report())
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed multi-vantage report differs from batch")
	}
}
