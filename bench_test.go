// Benchmarks: one per table and figure of the paper. Each benchmark
// regenerates its artifact from a shared simulated world and reports the
// headline numbers via b.ReportMetric, so `go test -bench=. -benchmem`
// doubles as the experiment harness (see EXPERIMENTS.md for the
// paper-vs-measured record produced at full scale).
package mevscope

import (
	"sync"
	"testing"

	"mevscope/internal/core/ablate"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/measure"
	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// benchWorld is the shared simulated dataset for the per-artifact
// benchmarks. Built once; benchmarks then measure the regeneration cost of
// each artifact over it.
var (
	benchOnce  sync.Once
	benchStudy *Study
	benchIn    measure.Inputs
	benchInf   *privinfer.Inferrer
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		study, err := Run(Options{Seed: 1234, BlocksPerMonth: 100})
		if err != nil {
			panic(err)
		}
		benchStudy = study
		benchIn = measure.Inputs{
			Chain:    study.Sim.Chain,
			FBBlocks: study.Sim.Relay.Blocks(),
			FBSet:    study.Sim.Relay.FlashbotsTxSet(),
			Detect:   study.Detected,
			Profits:  study.Profits,
			WETH:     study.Sim.World.WETH,
		}
		benchInf = study.Inferrer
	})
	if benchStudy == nil {
		b.Fatal("bench world failed to build")
	}
}

// BenchmarkSimulation measures the world generator itself: blocks
// simulated per op (3 months at 60 blocks/month).
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(int64(i))
		cfg.BlocksPerMonth = 60
		cfg.Months = 3
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorScan measures the full §3.1 heuristic sweep over the
// shared 2300-block chain — the paper's "crawl the archive node" step.
func BenchmarkDetectorScan(b *testing.B) {
	benchSetup(b)
	c := benchStudy.Sim.Chain
	b.ResetTimer()
	var res *detect.Result
	for i := 0; i < b.N; i++ {
		res = detect.ScanAll(c, benchStudy.Sim.World.WETH)
	}
	b.ReportMetric(float64(len(res.Sandwiches)), "sandwiches")
	b.ReportMetric(float64(len(res.Arbitrages)), "arbitrages")
	b.ReportMetric(float64(len(res.Liquidations)), "liquidations")
}

// BenchmarkProfitResolution measures the §3.1 profit computation.
func BenchmarkProfitResolution(b *testing.B) {
	benchSetup(b)
	comp := profit.New(benchStudy.Sim.Chain, benchStudy.Sim.Prices, benchStudy.Sim.World.WETH, benchIn.FBSet)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(comp.ResolveAll(benchStudy.Detected))
	}
	b.ReportMetric(float64(n), "records")
}

// BenchmarkTable1_MEVDatasetOverview regenerates Table 1.
func BenchmarkTable1_MEVDatasetOverview(b *testing.B) {
	benchSetup(b)
	var t measure.Table1
	for i := 0; i < b.N; i++ {
		t = measure.BuildTable1(benchIn)
	}
	b.ReportMetric(float64(t.Total.Extractions), "extractions")
	b.ReportMetric(t.Total.Pct(t.Total.ViaFlashbots), "pct_flashbots")
}

// BenchmarkFigure3_FlashbotsBlockRatio regenerates the monthly Flashbots
// block proportion series.
func BenchmarkFigure3_FlashbotsBlockRatio(b *testing.B) {
	benchSetup(b)
	var rows []measure.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = measure.BuildFigure3(benchIn)
	}
	peak := 0.0
	for _, r := range rows {
		if r.Ratio() > peak {
			peak = r.Ratio()
		}
	}
	b.ReportMetric(100*peak, "peak_ratio_pct")
}

// BenchmarkFigure4_FlashbotsHashrate regenerates the hashrate estimate.
func BenchmarkFigure4_FlashbotsHashrate(b *testing.B) {
	benchSetup(b)
	var series []measure.MonthValue
	for i := 0; i < b.N; i++ {
		series = measure.BuildFigure4(benchIn)
	}
	final := 0.0
	if len(series) > 0 {
		final = series[len(series)-1].Value
	}
	b.ReportMetric(100*final, "final_hashrate_pct")
}

// BenchmarkFigure5_MinersWithNBlocks regenerates the miner-threshold
// distribution.
func BenchmarkFigure5_MinersWithNBlocks(b *testing.B) {
	benchSetup(b)
	var f measure.Fig5
	for i := 0; i < b.N; i++ {
		f = measure.BuildFigure5(benchIn)
	}
	b.ReportMetric(float64(f.MaxMinersInAnyMonth()), "peak_miners")
}

// BenchmarkFigure6_GasPriceCorrelation regenerates the sandwich/gas
// series; the paper's April-2021 dip shows up as the min of the pre-London
// months.
func BenchmarkFigure6_GasPriceCorrelation(b *testing.B) {
	benchSetup(b)
	var f measure.Fig6
	for i := 0; i < b.N; i++ {
		f = measure.BuildFigure6(benchIn)
	}
	b.ReportMetric(f.CorrNonFB, "corr_nonfb")
}

// BenchmarkFigure7_MEVTypes regenerates the searcher/transaction per-type
// series.
func BenchmarkFigure7_MEVTypes(b *testing.B) {
	benchSetup(b)
	var f measure.Fig7
	for i := 0; i < b.N; i++ {
		f = measure.BuildFigure7(benchIn)
	}
	b.ReportMetric(float64(len(f.Rows)), "months")
}

// BenchmarkFigure8_ProfitDistribution regenerates the four profit
// subpopulations.
func BenchmarkFigure8_ProfitDistribution(b *testing.B) {
	benchSetup(b)
	var f measure.Fig8
	for i := 0; i < b.N; i++ {
		f = measure.BuildFigure8(benchIn)
	}
	b.ReportMetric(f.SearcherFB.Mean, "searcher_fb_mean_eth")
	b.ReportMetric(f.SearcherNonFB.Mean, "searcher_nonfb_mean_eth")
	b.ReportMetric(f.MinerFB.Mean, "miner_fb_mean_eth")
	b.ReportMetric(f.MinerNonFB.Mean, "miner_nonfb_mean_eth")
}

// BenchmarkFigure9_PrivateMEVSplit regenerates the private/public split.
func BenchmarkFigure9_PrivateMEVSplit(b *testing.B) {
	benchSetup(b)
	if benchInf == nil {
		b.Skip("no observation window at this scale")
	}
	var f measure.Fig9
	for i := 0; i < b.N; i++ {
		f = measure.BuildFigure9(benchIn, benchInf)
	}
	b.ReportMetric(100*f.Split.FlashbotsShare(), "fb_pct")
	b.ReportMetric(100*f.Split.PrivateShare(), "private_pct")
	b.ReportMetric(100*f.Split.PublicShare(), "public_pct")
}

// BenchmarkBundleStats regenerates the §4.1 bundle statistics.
func BenchmarkBundleStats(b *testing.B) {
	benchSetup(b)
	var s measure.BundleStats
	for i := 0; i < b.N; i++ {
		s = measure.BuildBundleStats(benchIn)
	}
	b.ReportMetric(s.BundlesPerBlock.Mean, "bundles_per_block")
	b.ReportMetric(100*s.SingleTxShare(), "single_tx_pct")
	b.ReportMetric(float64(s.MaxBundleTxs), "max_bundle_txs")
}

// BenchmarkNegativeProfits regenerates the §5.2 unprofitable-sandwich
// statistics.
func BenchmarkNegativeProfits(b *testing.B) {
	benchSetup(b)
	var n measure.NegativeProfits
	for i := 0; i < b.N; i++ {
		n = measure.BuildNegativeProfits(benchIn)
	}
	b.ReportMetric(100*n.Share(), "unprofitable_pct")
}

// BenchmarkPrivateSandwiches regenerates the §6.2 window accounting.
func BenchmarkPrivateSandwiches(b *testing.B) {
	benchSetup(b)
	if benchInf == nil {
		b.Skip("no observation window at this scale")
	}
	var sp privinfer.SandwichSplit
	for i := 0; i < b.N; i++ {
		sp = benchInf.SplitSandwiches(benchStudy.Detected.Sandwiches)
	}
	b.ReportMetric(float64(sp.Total), "window_sandwiches")
}

// BenchmarkMinerPrivatePools regenerates the §6.3 account→miner
// attribution.
func BenchmarkMinerPrivatePools(b *testing.B) {
	benchSetup(b)
	if benchInf == nil {
		b.Skip("no observation window at this scale")
	}
	var links []privinfer.MinerLink
	for i := 0; i < b.N; i++ {
		links = benchInf.LinkPrivateSandwiches(benchStudy.Detected.Sandwiches)
	}
	single := 0
	for _, l := range links {
		if _, ok := l.SingleMiner(); ok {
			single++
		}
	}
	b.ReportMetric(float64(len(links)), "accounts")
	b.ReportMetric(float64(single), "single_miner_accounts")
}

// benchAnalyze measures the full measurement pipeline (detect + profit +
// inference + report) over the shared world at a fixed worker count.
func benchAnalyze(b *testing.B, workers int) {
	benchSetup(b)
	s := benchStudy.Sim
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeWith(s, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeSequential is the single-worker measurement pipeline —
// the baseline the parallel pipeline is compared against.
func BenchmarkAnalyzeSequential(b *testing.B) { benchAnalyze(b, 1) }

// BenchmarkAnalyzeParallel2 runs the pipeline with a 2-worker pool.
func BenchmarkAnalyzeParallel2(b *testing.B) { benchAnalyze(b, 2) }

// BenchmarkAnalyzeParallel4 runs the pipeline with a 4-worker pool; on a
// ≥4-core machine wall-clock should be well under the sequential run.
func BenchmarkAnalyzeParallel4(b *testing.B) { benchAnalyze(b, 4) }

// BenchmarkAnalyzeParallelNumCPU runs the default Analyze configuration.
func BenchmarkAnalyzeParallelNumCPU(b *testing.B) { benchAnalyze(b, -1) }

// BenchmarkEnsemble4Seeds measures a small multi-seed ensemble end to end
// (4 seeds × 3 months), the scenario-sweep workload.
func BenchmarkEnsemble4Seeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := Options{BlocksPerMonth: 40, Months: 3, Scenario: "baseline"}
		seeds := []int64{int64(4*i + 1), int64(4*i + 2), int64(4*i + 3), int64(4*i + 4)}
		if _, err := RunEnsembleWith(base, seeds, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline measures simulate+measure end to end at small
// scale — the cost of a complete reproduction run.
func BenchmarkFullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Options{Seed: int64(i), BlocksPerMonth: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRandomOrdering runs the §8.3 random-ordering
// countermeasure experiment: shuffle every sandwich's block and measure
// attack survival. The paper's back-of-envelope gives 25 % (two
// independent coin flips); the exact uniform-permutation survival is 1/6
// for the strict triple and 1/2 for a single frontrun — both reported.
func BenchmarkAblationRandomOrdering(b *testing.B) {
	benchSetup(b)
	var res ablate.OrderingResult
	for i := 0; i < b.N; i++ {
		res = ablate.RandomOrdering(benchStudy.Sim.Chain, benchStudy.Detected.Sandwiches, 200, int64(i))
	}
	b.ReportMetric(100*res.SurvivalRate(), "sandwich_survival_pct")
	b.ReportMetric(100*res.SingleSurvivalRate(), "frontrun_survival_pct")
}

// BenchmarkAblationTipSensitivity sweeps counterfactual sealed-bid tip
// fractions over the measured Flashbots extractions — the §8.2 argument
// that the auction design transfers searcher income to miners.
func BenchmarkAblationTipSensitivity(b *testing.B) {
	benchSetup(b)
	fracs := []float64{0.5, 0.7, 0.85, 0.95}
	var pts []ablate.TipPoint
	for i := 0; i < b.N; i++ {
		pts = ablate.TipSensitivity(benchStudy.Sim.Chain, benchStudy.Profits, fracs)
	}
	for _, p := range pts {
		b.ReportMetric(p.MeanNetETH, "net_eth_at_"+fmtFrac(p.TipFrac))
	}
}

func fmtFrac(f float64) string {
	return string([]byte{'0' + byte(f*10)%10, '0' + byte(f*100)%10}) + "pct_tip"
}

// BenchmarkAblationNoFlashbots runs the counterfactual the paper could
// not: a world where Flashbots never launches. It reports the average gas
// price over Mar-Aug 2021 with and without Flashbots — testing the §8.2
// takeaway that "Flashbots has ... reduced gas prices" by keeping priority
// gas auctions alive in the counterfactual.
func BenchmarkAblationNoFlashbots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gasWith := ablationAvgGas(b, int64(900+i), false)
		gasWithout := ablationAvgGas(b, int64(900+i), true)
		b.ReportMetric(gasWith, "avg_gas_gwei_with_fb")
		b.ReportMetric(gasWithout, "avg_gas_gwei_without_fb")
		b.ReportMetric(gasWithout-gasWith, "gas_saved_gwei")
	}
}

// ablationAvgGas runs months 0..15 and averages effective gas prices over
// the post-launch, pre-London months (Mar-Jul 2021).
func ablationAvgGas(b *testing.B, seed int64, disable bool) float64 {
	cfg := sim.DefaultConfig(seed)
	cfg.BlocksPerMonth = 60
	cfg.Months = 15
	cfg.DisableFlashbots = disable
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	var sum float64
	var n int
	for m := 10; m <= 14; m++ {
		for _, blk := range s.Chain.BlocksInMonth(types.Month(m)) {
			for _, rcpt := range blk.Receipts {
				sum += float64(rcpt.EffectiveGasPrice) / float64(types.Gwei)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
