package mevscope

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"mevscope/internal/archive"
	"mevscope/internal/dataset"
)

// TestWriteReportGolden pins the text report byte-for-byte against the
// output of the pre-artifact-model renderer (captured in testdata before
// the refactor). The renderer is now a thin walk over the structured
// artifact model; this test is the proof the model carries every value
// the monolithic renderer read, at full precision.
func TestWriteReportGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/report_seed1234_bpm100.golden")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Options{Seed: 1234, BlocksPerMonth: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st.WriteReport(&buf)
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	gotLines := strings.Split(buf.String(), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "<missing>", "<missing>"
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("report drifted from golden at line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
	t.Fatal("report differs from golden (whitespace only?)")
}

// TestArchiveRoundTripGolden pins the archive formats against the same
// golden file the in-memory pipeline is pinned to: the golden world
// archived as v1, v2 and v3 must each restore to a dataset whose report
// is byte-for-byte the golden report. This is the acceptance gate for
// every encoding — compression, framing, the block index, per-column
// codecs and zone maps are invisible to every measured value.
func TestArchiveRoundTripGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/report_seed1234_bpm100.golden")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Options{Seed: 1234, BlocksPerMonth: 100})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.FromSim(st.Sim)
	for _, format := range []archive.Format{archive.FormatV1, archive.FormatV2, archive.FormatV3} {
		dir := t.TempDir()
		if _, err := archive.WriteFormat(dir, ds, nil, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		restored, _, err := archive.Read(dir)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		rst, err := AnalyzeDataset(restored, 2)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		var buf bytes.Buffer
		rst.WriteReport(&buf)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s archive round trip drifted from the golden report", format)
		}
	}
}

// TestArtifactFormatsConsistent cross-checks the three encodings of one
// artifact: the CSV row count matches the model, and the text rendering
// carries the same months the model rows do.
func TestArtifactFormatsConsistent(t *testing.T) {
	st := runStudy(t)
	a, ok := st.Report.Artifact("fig3")
	if !ok {
		t.Fatal("fig3 artifact missing")
	}
	var csvBuf bytes.Buffer
	if err := st.Report.Fig3CSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(csvBuf.String()), "\n")
	if lines != len(a.Rows) {
		t.Errorf("CSV rows = %d, model rows = %d", lines, len(a.Rows))
	}
	var txt bytes.Buffer
	st.WriteReport(&txt)
	for _, row := range a.Rows {
		if !strings.Contains(txt.String(), row[0].Month.String()) {
			t.Errorf("text report missing month %s", row[0].Month)
		}
	}
	if len(a.Rows) == 0 {
		t.Fatal("fig3 artifact has no rows")
	}
	// The JSON encoding round-trips the same cells.
	var out struct {
		Rows [][]any `json:"rows"`
	}
	var jsonBuf bytes.Buffer
	if err := a.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != len(a.Rows) {
		t.Errorf("JSON rows = %d, model rows = %d", len(out.Rows), len(a.Rows))
	}
	for i, row := range a.Rows {
		if got, want := out.Rows[i][1].(float64), float64(row[1].Int); got != want {
			t.Errorf("row %d flashbots_blocks: JSON %v, model %v", i, got, want)
		}
		if got, want := fmt.Sprint(out.Rows[i][0]), row[0].Month.String(); got != want {
			t.Errorf("row %d month: JSON %q, model %q", i, got, want)
		}
	}
}
